#include "db/db_impl.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <thread>
#include <vector>

#include "core/output_writer.h"
#include "db/db_iter.h"
#include "db/dbformat.h"
#include "db/filename.h"
#include "db/memtable.h"
#include "db/table_cache.h"
#include "db/version_set.h"
#include "db/write_batch.h"
#include "obs/event_listener.h"
#include "obs/metrics.h"
#include "obs/perf_context.h"
#include "obs/tracer.h"
#include "sim/sim_context.h"
#include "table/iterator.h"
#include "table/merger.h"
#include "util/cache.h"
#include "util/coding.h"
#include "util/mutexlock.h"
#include "util/sync_point.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace bolt {

// Information kept for every waiting writer
struct DBImpl::Writer {
  explicit Writer(port::Mutex* mu)
      : batch(nullptr), sync(false), done(false), cv(mu) {}

  Status status;
  WriteBatch* batch;
  bool sync;
  bool done;
  port::CondVar cv;
};

// One key-range shard of a compaction.  Shard i covers user keys in
// (start, end]; unbounded at either side when has_start/has_end is
// false.  Boundaries are whole user keys, so every version of a user
// key lands in exactly one shard and the drop logic stays local.
struct DBImpl::SubcompactionState {
  std::string start;  // exclusive lower bound (user key)
  std::string end;    // inclusive upper bound (user key)
  bool has_start = false;
  bool has_end = false;
  int shard = 0;       // this shard's index within the job
  int num_shards = 1;  // total shards in the job

  std::unique_ptr<OutputWriter> writer;
  Compaction::IterState iter_state;
  Iterator* input = nullptr;
  uint64_t entries_processed = 0;
  Status status;
};

struct DBImpl::CompactionState {
  explicit CompactionState(Compaction* c) : compaction(c) {}

  Compaction* const compaction;

  // Sequence numbers < smallest_snapshot are not significant since we
  // will never have to service a snapshot below smallest_snapshot.
  // Therefore if we have seen a sequence number S <= smallest_snapshot,
  // we can drop all entries for the same key with sequence numbers < S.
  SequenceNumber smallest_snapshot = 0;

  // One entry per key-range shard, in key order (usually just one).
  std::vector<SubcompactionState> subs;
  std::vector<uint64_t> allocated_numbers;  // protected as pending outputs

  uint64_t entries_processed() const {
    uint64_t n = 0;
    for (const auto& sub : subs) n += sub.entries_processed;
    return n;
  }
  uint64_t total_bytes_written() const {
    uint64_t n = 0;
    for (const auto& sub : subs) {
      if (sub.writer) n += sub.writer->bytes_written();
    }
    return n;
  }
  uint64_t total_tables_written() const {
    uint64_t n = 0;
    for (const auto& sub : subs) {
      if (sub.writer) n += sub.writer->outputs().size();
    }
    return n;
  }
};

template <class T, class V>
static void ClipToRange(T* ptr, V minvalue, V maxvalue) {
  if (static_cast<V>(*ptr) > maxvalue) *ptr = maxvalue;
  if (static_cast<V>(*ptr) < minvalue) *ptr = minvalue;
}

static Options SanitizeOptions(const std::string& dbname,
                               const InternalKeyComparator* icmp,
                               const InternalFilterPolicy* ipolicy,
                               const Options& src) {
  Options result = src;
  result.comparator = icmp;
  result.filter_policy = (src.filter_policy != nullptr) ? ipolicy : nullptr;
  ClipToRange(&result.max_open_files, 16, 500000);
  ClipToRange(&result.write_buffer_size, 16 << 10, 1 << 30);
  ClipToRange(&result.max_file_size, 8 << 10, 1 << 30);
  ClipToRange(&result.block_size, 256, 4 << 20);
  if (result.bolt_logical_sstables) {
    ClipToRange(&result.logical_sstable_size, static_cast<uint64_t>(4) << 10,
                static_cast<uint64_t>(1) << 30);
  }
  if (result.num_levels < 2) result.num_levels = 2;
  ClipToRange(&result.max_background_jobs, 1, 64);
  ClipToRange(&result.max_subcompactions, 1, 64);
  if (result.block_cache == nullptr && result.block_cache_bytes > 0) {
    result.block_cache = NewLRUCache(result.block_cache_bytes);
  }
  if (result.metrics == nullptr) {
    result.metrics = new obs::MetricsRegistry;
  }
  if (result.tracer == nullptr && result.enable_tracing) {
    result.tracer = new obs::Tracer(result.env, result.trace_capacity);
  }
  if (result.info_log == nullptr && result.env->sim() == nullptr) {
    // Open an info log in the db directory, rotating the previous run's
    // to LOG.old.  SimEnv DBs keep a null (silent) logger: a simulated
    // filesystem has no place a human would go read LOG.
    (void)result.env->CreateDir(dbname);  // in case it does not exist yet
    (void)result.env->RenameFile(
        InfoLogFileName(dbname),
        OldInfoLogFileName(dbname));  // no previous LOG is fine
    Status s = result.env->NewLogger(InfoLogFileName(dbname),
                                     &result.info_log);
    if (!s.ok()) {
      result.info_log = nullptr;  // silent, as before
    }
  }
  return result;
}

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname)
    : env_(raw_options.env),
      internal_comparator_(raw_options.comparator),
      internal_filter_policy_(raw_options.filter_policy),
      options_(SanitizeOptions(dbname, &internal_comparator_,
                               &internal_filter_policy_, raw_options)),
      owns_info_log_(options_.info_log != raw_options.info_log),
      owns_block_cache_(options_.block_cache != raw_options.block_cache),
      metrics_(options_.metrics),
      owns_metrics_(options_.metrics != raw_options.metrics),
      tracer_(options_.tracer),
      owns_tracer_(options_.tracer != raw_options.tracer),
      dbname_(dbname),
      sim_(raw_options.env->sim()),
      table_cache_(new TableCache(dbname_, options_, options_.max_open_files)),
      shutting_down_(false),
      background_work_finished_signal_(&mutex_),
      mem_(nullptr),
      imm_(nullptr),
      has_imm_(false),
      logfile_(nullptr),
      logfile_number_(0),
      log_(nullptr),
      tmp_batch_(new WriteBatch),
      bg_flush_scheduled_(false),
      imm_flush_active_(false),
      bg_compactions_scheduled_(0),
      merge_compactions_in_flight_(0),
      removing_obsolete_files_(false),
      flush_lane_dedicated_(sim_ == nullptr && options_.max_background_jobs > 1),
      max_compaction_jobs_(
          sim_ != nullptr
              ? 1
              : std::max(1, options_.max_background_jobs -
                                (flush_lane_dedicated_ ? 1 : 0))),
      manual_compaction_(nullptr),
      versions_(new VersionSet(dbname_, &options_, table_cache_,
                               &internal_comparator_)),
      stats_cv_(&mutex_) {
  // Point the env at our registry so every Sync barrier — WAL, table,
  // MANIFEST — lands in the same place.  With several DBs sharing one
  // env (the PosixEnv singleton), the last-opened DB wins.
  env_->SetMetricsRegistry(metrics_);
  if (tracer_ != nullptr) {
    // Same sharing rule as the registry: file-op spans from the env land
    // in the DB's tracer; with several DBs the last-opened wins.
    env_->SetTracer(tracer_);
    if (sim_ != nullptr) {
      sim_bg_tid_ = tracer_->ReserveTid("sim-bg-lane");
      tracer_->NameCurrentThread("sim-fg-lane");
    }
  }
  if (sim_ == nullptr) {
    // Size the pool lanes up front: lazy growth only, so a wider DB
    // sharing the PosixEnv singleton never shrinks another DB's lanes.
    env_->SetBackgroundThreads(max_compaction_jobs_, Env::Priority::kLow);
    if (flush_lane_dedicated_) {
      env_->SetBackgroundThreads(1, Env::Priority::kHigh);
    }
    if (options_.stats_dump_period_sec > 0 && options_.info_log != nullptr) {
      stats_last_snapshot_ = metrics_->TakeSnapshot();
      stats_last_dump_ns_ = env_->NowNanos();
      stats_thread_ = std::thread(&DBImpl::StatsDumpLoop, this);
    }
  }
}

DBImpl::~DBImpl() {
  // Wait for background work to finish.
  mutex_.Lock();
  shutting_down_.store(true, std::memory_order_release);
  stats_cv_.SignalAll();  // wake the stats timer so it can exit
  if (simulated()) {
    // Sim-mode recovery runs inline on the write path; with shutdown
    // set no further write will consume the pending flag.
    recovery_scheduled_ = false;
  }
  while (bg_flush_scheduled_ || bg_compactions_scheduled_ > 0 ||
         stats_dump_scheduled_ || recovery_scheduled_) {
    background_work_finished_signal_.Wait();
  }
  mutex_.Unlock();
  if (stats_thread_.joinable()) {
    stats_thread_.join();
  }

  delete versions_;
  if (mem_ != nullptr) mem_->Unref();
  if (imm_ != nullptr) imm_->Unref();
  delete tmp_batch_;
  delete log_;
  delete logfile_;
  delete table_cache_;

  if (owns_block_cache_) {
    delete options_.block_cache;
  }

  // Detach the env from our registry/tracer before (possibly) deleting
  // them; the env outlives this DB.
  if (env_->metrics() == metrics_) {
    env_->SetMetricsRegistry(nullptr);
  }
  if (tracer_ != nullptr && env_->tracer() == tracer_) {
    env_->SetTracer(nullptr);
  }
  if (owns_tracer_) {
    delete tracer_;
  }
  if (owns_metrics_) {
    delete metrics_;
  }
  if (owns_info_log_) {
    delete options_.info_log;
  }
}

Status DBImpl::NewDB() {
  VersionEdit new_db;
  new_db.SetComparatorName(user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(manifest, &file);
  if (!s.ok()) {
    return s;
  }
  bool synced = false;
  {
    log::Writer log(file.get());
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(record);
    if (s.ok()) {
      BOLT_SYNC_POINT("DBImpl::NewDB:BeforeManifestSync");
      s = file->Sync();
      synced = s.ok();
    }
    if (s.ok()) {
      s = file->Close();
    }
  }
  if (s.ok()) {
    // Make "CURRENT" file that points to the new manifest file.
    BOLT_SYNC_POINT("DBImpl::NewDB:BeforeCurrentSwap");
    s = SetCurrentFile(env_, dbname_, 1);
  } else {
    (void)env_->RemoveFile(manifest);  // best-effort cleanup; s is the
                                       // primary failure
  }
  // Manifest barrier bookkeeping: every successful MANIFEST Sync() ends
  // up committed (the descriptor installs) or orphaned (a later step
  // failed and the file was discarded), so
  // env.sync.manifest == barrier.manifest.committed + orphaned exactly.
  if (synced) {
    metrics_->Add(s.ok() ? obs::kManifestBarriersCommitted
                         : obs::kManifestBarriersOrphaned);
  }
  return s;
}

void DBImpl::MaybeIgnoreError(Status* s) const {
  if (s->ok() || options_.paranoid_checks) {
    // No change needed
  } else {
    Log(options_.info_log, "Ignoring error %s", s->ToString().c_str());
    *s = Status::OK();
  }
}

void DBImpl::RemoveObsoleteFiles() {
  if (!bg_error_.ok()) {
    // After a background error, we don't know whether a new version may
    // or may not have been committed, so we cannot safely garbage collect.
    return;
  }
  if (removing_obsolete_files_) {
    // Another background thread is mid-purge (it releases mutex_ for the
    // deletions); it will rerun after the next job completes.
    return;
  }
  removing_obsolete_files_ = true;

  // Make a set of all of the live tables and physical files.
  std::set<uint64_t> live_tables;
  std::set<std::pair<uint64_t, int>> live_files;
  versions_->AddLiveTables(&live_tables, &live_files);

  std::vector<std::string> filenames;
  // Ignoring errors on purpose: a failed listing just postpones GC.
  (void)env_->GetChildren(dbname_, &filenames);
  uint64_t number;
  FileType type;
  std::vector<std::string> files_to_delete;
  std::vector<std::pair<uint64_t, FileType>> tables_to_evict;
  for (std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      bool keep = true;
      switch (type) {
        case kLogFile:
          keep = ((number >= versions_->LogNumber()) ||
                  (number == versions_->PrevLogNumber()));
          break;
        case kDescriptorFile:
          // Keep my manifest file, and any newer incarnations'
          // (in case there is a race that allows other incarnations)
          keep = (number >= versions_->manifest_file_number());
          break;
        case kTableFile:
          keep = pending_outputs_.count(number) > 0 ||
                 live_files.count({number, kTableFile}) > 0;
          break;
        case kCompactionFile:
          keep = pending_outputs_.count(number) > 0 ||
                 live_files.count({number, kCompactionFile}) > 0;
          break;
        case kTempFile:
          // Any temp files that are currently being written to must
          // be recorded in pending_outputs_, which is inserted into "live"
          keep = (pending_outputs_.count(number) > 0);
          break;
        case kCurrentFile:
        case kDBLockFile:
        case kInfoLogFile:
          keep = true;
          break;
      }

      if (!keep) {
        files_to_delete.push_back(std::move(filename));
        if (type == kTableFile) {
          table_cache_->Evict(number);  // stock: table_id == file_number
        } else if (type == kCompactionFile) {
          table_cache_->EvictFile(number, kCompactionFile);
        }
      }
    }
  }

  // Hole punching for dead logical SSTables (BoLT §3.2): a zombie whose
  // table is no longer referenced by any live version is reclaimed with
  // fallocate(PUNCH_HOLE) — no data barrier — unless its entire
  // compaction file is being unlinked anyway.
  std::vector<ZombieTable> still_zombies;
  std::vector<ZombieTable> to_punch;
  for (const ZombieTable& z : zombies_) {
    if (live_tables.count(z.table_id) > 0) {
      still_zombies.push_back(z);  // some old version still reads it
      continue;
    }
    table_cache_->Evict(z.table_id);
    if (live_files.count({z.file_number, kCompactionFile}) > 0 ||
        pending_outputs_.count(z.file_number) > 0) {
      if (punch_hole_unsupported_) {
        // The filesystem cannot punch holes; reclamation happens when a
        // later compaction unlinks the whole file.  Keep the zombie so
        // the backlog stays visible in stats.
        still_zombies.push_back(z);
      } else {
        to_punch.push_back(z);
      }
    }
    // else: the whole file is obsolete and will be unlinked below.
  }
  zombies_.swap(still_zombies);

  // While deleting all files unblock other threads.  All files being
  // deleted have unique names which will not collide with newly created
  // files and are therefore safe to delete while allowing other threads
  // to proceed.
  mutex_.Unlock();
  std::vector<ZombieTable> punch_failed;
  uint64_t punched = 0;
  bool punch_unsupported = false;
  {
    // Only an actual reclamation pass gets a span; the common empty
    // sweep stays invisible in the trace.
    obs::SpanScope span(
        (files_to_delete.empty() && to_punch.empty()) ? nullptr : tracer_,
        "reclaim");
    span.AddArg("files_deleted", files_to_delete.size());
    span.AddArg("zombies_to_punch", to_punch.size());
    for (const std::string& filename : files_to_delete) {
      // Best-effort: a file that refuses to delete is retried by the
      // next RemoveObsoleteFiles pass.
      (void)env_->RemoveFile(dbname_ + "/" + filename);
    }
    for (const ZombieTable& z : to_punch) {
      Status ps = env_->PunchHole(CompactionFileName(dbname_, z.file_number),
                                  z.offset, z.size);
      obs::HolePunchInfo hp;
      hp.file_number = z.file_number;
      hp.offset = z.offset;
      hp.size = z.size;
      hp.ok = ps.ok();
      for (const auto& listener : options_.listeners) {
        listener->OnHolePunch(hp);
      }
      if (ps.ok()) {
        punched++;
      } else {
        // Hole punching is an optimization (§3.2): a failed punch must
        // not take the DB down.  Reads stay correct — the dead bytes are
        // simply not reclaimed yet — so log it, keep the zombie, and
        // retry on the next pass.
        Log(options_.info_log, "PunchHole deferred for %06llu.cft: %s",
            static_cast<unsigned long long>(z.file_number),
            ps.ToString().c_str());
        if (ps.IsNotSupported()) {
          punch_unsupported = true;
        }
        punch_failed.push_back(z);
      }
    }
  }
  mutex_.Lock();
  metrics_->Add(obs::kHolePunches, punched);
  metrics_->Add(obs::kHolePunchFailures, punch_failed.size());
  if (punch_unsupported) {
    punch_hole_unsupported_ = true;
  }
  zombies_.insert(zombies_.end(), punch_failed.begin(), punch_failed.end());
  metrics_->SetGauge(obs::kReclamationBacklog, zombies_.size());
  removing_obsolete_files_ = false;
}

Status DBImpl::Recover(VersionEdit* edit) {
  // Ignore error from CreateDir since the creation of the DB is
  // committed only by the descriptor file.
  (void)env_->CreateDir(dbname_);

  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (options_.create_if_missing) {
      Status s = NewDB();
      if (!s.ok()) {
        return s;
      }
    } else {
      return Status::InvalidArgument(
          dbname_, "does not exist (create_if_missing is false)");
    }
  } else {
    if (options_.error_if_exists) {
      return Status::InvalidArgument(dbname_,
                                     "exists (error_if_exists is true)");
    }
  }

  Status s = versions_->Recover();
  if (!s.ok()) {
    return s;
  }
  SequenceNumber max_sequence(0);

  // Recover from all newer log files than the ones named in the
  // descriptor (new log files may have been added by the previous
  // incarnation without registering them in the descriptor).
  const uint64_t min_log = versions_->LogNumber();
  const uint64_t prev_log = versions_->PrevLogNumber();
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) {
    return s;
  }
  uint64_t number;
  FileType type;
  std::vector<uint64_t> logs;
  for (const std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      if (type == kLogFile && ((number >= min_log) || (number == prev_log))) {
        logs.push_back(number);
      }
    }
  }

  // Recover in the order in which the logs were generated
  std::sort(logs.begin(), logs.end());
  for (size_t i = 0; i < logs.size(); i++) {
    s = RecoverLogFile(logs[i], edit, &max_sequence);
    if (!s.ok()) {
      return s;
    }

    // The previous incarnation may not have written any MANIFEST
    // records after allocating this log number.  So we manually update
    // the file number allocation counter in VersionSet.
    versions_->MarkFileNumberUsed(logs[i]);
  }

  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }

  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number, VersionEdit* edit,
                              SequenceNumber* max_sequence) {
  struct LogReporter : public log::Reader::Reporter {
    Env* env;
    Logger* info_log;
    const char* fname;
    Status* status;  // null if options_.paranoid_checks==false
    void Corruption(size_t bytes, const Status& s) override {
      Log(info_log, "%s%s: dropping %d bytes; %s",
          (this->status == nullptr ? "(ignoring error) " : ""), fname,
          static_cast<int>(bytes), s.ToString().c_str());
      if (this->status != nullptr && this->status->ok()) *this->status = s;
    }
  };

  // Open the log file
  std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status status = env_->NewSequentialFile(fname, &file);
  if (!status.ok()) {
    MaybeIgnoreError(&status);
    return status;
  }

  // Create the log reader.
  LogReporter reporter;
  reporter.env = env_;
  reporter.info_log = options_.info_log;
  reporter.fname = fname.c_str();
  reporter.status = (options_.paranoid_checks ? &status : nullptr);
  // We intentionally make log::Reader do checksumming even if
  // paranoid_checks==false so that corruptions cause entire commits
  // to be skipped instead of propagating bad information (like overly
  // large sequence numbers).
  log::Reader reader(file.get(), &reporter, true /*checksum*/);
  std::string scratch;
  Slice record;
  WriteBatch batch;
  MemTable* mem = nullptr;
  while (reader.ReadRecord(&record, &scratch) && status.ok()) {
    if (record.size() < 12) {
      reporter.Corruption(record.size(),
                          Status::Corruption("log record too small"));
      continue;
    }
    WriteBatchInternal::SetContents(&batch, record);

    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_);
      mem->Ref();
    }
    status = WriteBatchInternal::InsertInto(&batch, mem);
    MaybeIgnoreError(&status);
    if (!status.ok()) {
      break;
    }
    const SequenceNumber last_seq = WriteBatchInternal::Sequence(&batch) +
                                    WriteBatchInternal::Count(&batch) - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      status = WriteLevel0Table(mem, edit);
      mem->Unref();
      mem = nullptr;
      if (!status.ok()) {
        // Reflect errors immediately so that conditions like full
        // file-systems cause the DB::Open() to fail.
        break;
      }
    }
  }

  if (status.ok() && mem != nullptr) {
    status = WriteLevel0Table(mem, edit);
  }
  if (mem != nullptr) mem->Unref();

  return status;
}

Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit) {
  obs::SpanScope span(tracer_, "flush");
  BOLT_SYNC_POINT("DBImpl::WriteLevel0Table:Start");
  const uint64_t start_ns = env_->NowNanos();
  metrics_->Add(obs::kMemtableFlushes);
  for (const auto& listener : options_.listeners) {
    listener->OnFlushBegin(obs::FlushJobInfo());
  }

  OutputWriter writer(options_, dbname_, [this]() {
    MutexLock l(&mutex_);
    uint64_t n = versions_->NewFileNumber();
    pending_outputs_.insert(n);
    return n;
  });

  Iterator* iter = mem->NewIterator();

  Status s;
  mutex_.Unlock();
  {
    iter->SeekToFirst();
    for (; iter->Valid(); iter->Next()) {
      // BoLT cuts the flush into fine-grained logical SSTables; stock
      // LevelDB writes the whole memtable as a single L0 table.  Cuts
      // happen *before* the next key and never inside a user key's
      // version run (all versions of a user key stay in one table).
      if (options_.bolt_logical_sstables && writer.CurrentTableFull() &&
          writer.SafeToCutBefore(iter->key())) {
        s = writer.FinishTable();
        if (!s.ok()) break;
      }
      s = writer.Add(iter->key(), iter->value());
      if (!s.ok()) break;
      if (simulated()) {
        sim_->AdvanceCpu(static_cast<uint64_t>(
            options_.sim_compaction_cpu_per_entry_ns / options_.bg_parallelism));
      }
    }
    if (s.ok()) {
      BOLT_SYNC_POINT("DBImpl::WriteLevel0Table:BeforeFinish");
      s = writer.Finish();
    } else {
      writer.Abandon();
    }
  }
  delete iter;
  BOLT_SYNC_POINT("DBImpl::WriteLevel0Table:Built");
  mutex_.Lock();

  metrics_->Add(obs::kCompactionBytesWritten, writer.bytes_written());
  metrics_->Add(obs::kCompactionOutputTables, writer.outputs().size());
  metrics_->Add(obs::kCompactionFilesCreated, writer.file_numbers().size());
  // Data barriers this flush issued: committed if the tables go into the
  // edit, orphaned if the job failed and the files are deleted below.
  metrics_->Add(s.ok() ? obs::kDataBarriersCommitted
                       : obs::kDataBarriersOrphaned,
                writer.sync_calls());

  if (s.ok()) {
    for (const TableMeta& meta : writer.outputs()) {
      edit->AddTable(0, meta);
    }
  } else {
    // Remove any files we created.
    mutex_.Unlock();
    for (uint64_t n : writer.file_numbers()) {
      // Best-effort cleanup of the partial outputs; the flush already
      // failed and a leftover orphan is collected by the next GC pass.
      (void)env_->RemoveFile(options_.bolt_logical_sstables
                                 ? CompactionFileName(dbname_, n)
                                 : TableFileName(dbname_, n));
    }
    mutex_.Lock();
  }
  for (uint64_t n : writer.file_numbers()) {
    pending_outputs_.erase(n);
  }

  const uint64_t flush_ns = env_->NowNanos() - start_ns;
  if (options_.enable_perf_context) {
    metrics_->RecordHist(obs::kFlushNs, flush_ns);
  }
  obs::FlushJobInfo info;
  info.output_bytes = writer.bytes_written();
  info.output_tables = writer.outputs().size();
  info.duration_ns = flush_ns;
  info.status = s;
  for (const auto& listener : options_.listeners) {
    listener->OnFlushEnd(info);
  }
  span.AddArg("output_bytes", writer.bytes_written());
  span.AddArg("tables", writer.outputs().size());
  span.AddArg("entries", mem->num_entries());
  return s;
}

void DBImpl::CompactMemTable() {
  // In sim mode, the background lane must be current.
  assert(imm_ != nullptr);

  // Save the contents of the memtable as a new Table
  VersionEdit edit;
  Status s = WriteLevel0Table(imm_, &edit);
  ErrorOperation failed_op = ErrorOperation::kFlush;

  if (s.ok() && shutting_down_.load(std::memory_order_acquire)) {
    s = Status::IOError("Deleting DB during memtable compaction");
  }

  // Replace immutable memtable with the generated Table
  if (s.ok()) {
    edit.SetPrevLogNumber(0);
    edit.SetLogNumber(logfile_number_);  // Earlier logs no longer needed
    BOLT_SYNC_POINT("DBImpl::CompactMemTable:BeforeManifestCommit");
    s = versions_->LogAndApply(&edit);
    if (!s.ok()) {
      failed_op = ErrorOperation::kManifestCommit;
    }
  }

  if (s.ok()) {
    // Commit to the new state
    imm_->Unref();
    imm_ = nullptr;
    has_imm_.store(false, std::memory_order_release);
    if (simulated()) {
      const uint64_t done = sim_->Now();
      AddL0Event(done, +1);
      imm_done_time_ = done;
    }
    BOLT_SYNC_POINT("DBImpl::CompactMemTable:Committed");
    RemoveObsoleteFiles();
  } else {
    metrics_->Add(obs::kFlushFailures);
    RecordBackgroundError(s, failed_op);
  }
}

void DBImpl::TEST_CompactRange(int level, const Slice* begin,
                               const Slice* end) {
  assert(level >= 0);
  assert(level + 1 < options_.num_levels);

  InternalKey begin_storage, end_storage;

  ManualCompaction manual;
  manual.level = level;
  manual.done = false;
  if (begin == nullptr) {
    manual.begin = nullptr;
  } else {
    begin_storage = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
    manual.begin = &begin_storage;
  }
  if (end == nullptr) {
    manual.end = nullptr;
  } else {
    end_storage = InternalKey(*end, 0, static_cast<ValueType>(0));
    manual.end = &end_storage;
  }

  MutexLock l(&mutex_);
  if (simulated()) {
    obs::TidOverrideScope tid_scope(sim_bg_tid_);
    while (!manual.done && !shutting_down_.load(std::memory_order_acquire) &&
           bg_error_.ok()) {
      assert(manual_compaction_ == nullptr);
      manual_compaction_ = &manual;
      SimLaneScope scope(sim_, SimContext::kBgLane);
      sim_->SetLaneTime(SimContext::kBgLane,
                        sim_->LaneNow(SimContext::kFgLane));
      BackgroundCompaction();
      if (manual_compaction_ == &manual) {
        manual_compaction_ = nullptr;  // untouched => give up
        manual.done = true;
      }
    }
    return;
  }

  while (!manual.done && !shutting_down_.load(std::memory_order_acquire) &&
         bg_error_.ok()) {
    if (manual_compaction_ == nullptr) {  // Idle
      manual_compaction_ = &manual;
      MaybeScheduleCompaction();
    } else {  // Running either my compaction or another compaction.
      background_work_finished_signal_.Wait();
    }
  }
  // Finish current background compaction in the case where we were
  // interrupted.
  if (manual_compaction_ == &manual) {
    manual_compaction_ = nullptr;
  }
}

Status DBImpl::TEST_CompactMemTable() {
  // nullptr batch means just wait for earlier writes to be done
  Status s = Write(WriteOptions(), nullptr);
  if (s.ok()) {
    // Wait until the compaction completes
    MutexLock l(&mutex_);
    if (simulated()) {
      if (mem_->num_entries() > 0 || imm_ != nullptr) {
        // Force a flush of the current memtable.
        s = MakeRoomForWrite(true /* force */);
      }
    } else {
      if (imm_ == nullptr && mem_->num_entries() > 0) {
        s = MakeRoomForWrite(true /* force */);
      }
      while (imm_ != nullptr && bg_error_.ok()) {
        background_work_finished_signal_.Wait();
      }
      if (imm_ != nullptr) {
        s = bg_error_.status();
      }
    }
  }
  return s;
}

void DBImpl::RecordBackgroundError(const Status& s, ErrorOperation op,
                                   bool has_file_type, FileType file_type,
                                   const std::string& file_name) {
  BgErrorContext ctx;
  ctx.operation = op;
  ctx.has_file_type = has_file_type;
  ctx.file_type = file_type;
  ctx.file_name = file_name;
  if (!bg_error_.Set(s, ctx)) {
    return;  // an equal-or-worse error is already latched
  }
  metrics_->Add(obs::kBackgroundErrors);
  switch (bg_error_.severity()) {
    case ErrorSeverity::kTransient:
      metrics_->Add(obs::kErrorsTransient);
      break;
    case ErrorSeverity::kSoftError:
      metrics_->Add(obs::kErrorsSoft);
      break;
    case ErrorSeverity::kHardError:
      metrics_->Add(obs::kErrorsHard);
      break;
    case ErrorSeverity::kFatal:
      metrics_->Add(obs::kErrorsFatal);
      break;
    case ErrorSeverity::kNone:
      break;
  }
  metrics_->SetGauge(obs::kErrorCurrentSeverity,
                     static_cast<uint64_t>(bg_error_.severity()));
  Log(options_.info_log, "Background error latched: %s",
      bg_error_.Describe().c_str());
  obs::BackgroundErrorInfo info;
  info.operation = op;
  info.severity = bg_error_.severity();
  info.has_file_type = has_file_type;
  info.file_type = file_type;
  info.file_name = file_name;
  info.status = s;
  for (const auto& listener : options_.listeners) {
    listener->OnBackgroundError(info);
  }
  BOLT_SYNC_POINT("DBImpl::RecordBackgroundError:Latched");
  // A new (or escalated-by-replacement) error restarts the retry budget.
  recovery_attempt_ = 0;
  MaybeScheduleRecovery();
  background_work_finished_signal_.SignalAll();
}

void DBImpl::MaybeScheduleRecovery() {
  if (recovery_scheduled_) {
    return;  // an attempt is already queued or running
  }
  if (shutting_down_.load(std::memory_order_acquire)) {
    return;
  }
  if (bg_error_.ok() || options_.max_auto_recovery_attempts <= 0) {
    return;
  }
  const ErrorSeverity sev = bg_error_.severity();
  if (sev != ErrorSeverity::kTransient && sev != ErrorSeverity::kSoftError) {
    return;  // hard/fatal: only a manual Resume() may clear it
  }
  recovery_scheduled_ = true;
  if (simulated()) {
    // Single-threaded simulation: retrying inline from deep inside a
    // failing write/compaction would re-enter the engine mid-operation,
    // so recovery runs lazily from the next MakeRoomForWrite (which
    // calls BackgroundRecovery directly).  Leave the flag set so the
    // next write knows an attempt is owed.
    return;
  }
  env_->Schedule(&DBImpl::BGRecoveryWork, this, Env::Priority::kLow);
}

void DBImpl::BGRecoveryWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundRecovery();
}

uint64_t DBImpl::RecoveryBackoffMicros(int attempt) {
  // base * 2^(n-1), capped, +/- jitter.  xorshift on a per-DB seed: no
  // wall-clock entropy so simulated runs stay reproducible.
  uint64_t delay = options_.recovery_backoff_base_micros;
  for (int i = 1; i < attempt && delay < options_.recovery_backoff_max_micros;
       i++) {
    delay *= 2;
  }
  if (delay > options_.recovery_backoff_max_micros) {
    delay = options_.recovery_backoff_max_micros;
  }
  double jitter = options_.recovery_backoff_jitter;
  if (jitter > 0 && delay > 0) {
    if (jitter >= 1.0) jitter = 0.99;
    uint64_t x = recovery_jitter_seed_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    recovery_jitter_seed_ = x;
    // Uniform in [-jitter, +jitter] of the delay.
    const double frac = (static_cast<double>(x % 10000) / 5000.0) - 1.0;
    const int64_t adj = static_cast<int64_t>(frac * jitter *
                                             static_cast<double>(delay));
    delay = static_cast<uint64_t>(static_cast<int64_t>(delay) + adj);
  }
  return delay;
}

void DBImpl::BackgroundRecovery() {
  // The RecoveryManager retry loop.  On PosixEnv this is the body of a
  // low-priority pool task; in sim mode MakeRoomForWrite runs it inline
  // on the virtual clock.  REQUIRES on entry: recovery_scheduled_ set by
  // MaybeScheduleRecovery; mutex_ held iff simulated (which is why the
  // declaration carries NO_THREAD_SAFETY_ANALYSIS).
  if (!simulated()) {
    mutex_.Lock();
  }
  while (!shutting_down_.load(std::memory_order_acquire) &&
         !bg_error_.ok() &&
         (bg_error_.severity() == ErrorSeverity::kTransient ||
          bg_error_.severity() == ErrorSeverity::kSoftError) &&
         recovery_attempt_ < options_.max_auto_recovery_attempts) {
    recovery_attempt_++;
    const int attempt = recovery_attempt_;
    const uint64_t backoff = RecoveryBackoffMicros(attempt);
    metrics_->Add(obs::kRecoveryAttempts);
    metrics_->SetGauge(obs::kRecoveryAttemptGauge, attempt);
    obs::RecoveryInfo rinfo;
    rinfo.attempt = attempt;
    rinfo.auto_recovery = true;
    rinfo.backoff_micros = backoff;
    for (const auto& listener : options_.listeners) {
      listener->OnErrorRecoveryBegin(rinfo);
    }
    BOLT_SYNC_POINT("DBImpl::BackgroundRecovery:Attempt");
    if (simulated()) {
      sim_->AdvanceCpu(backoff * 1000);  // backoff charged as virtual time
    } else {
      // Sleep outside the mutex, in slices, so shutdown isn't held up by
      // a long backoff.
      mutex_.Unlock();
      uint64_t remaining = backoff;
      while (remaining > 0 &&
             !shutting_down_.load(std::memory_order_acquire)) {
        const uint64_t slice = remaining < 10000 ? remaining : 10000;
        env_->SleepForMicroseconds(static_cast<int>(slice));
        remaining -= slice;
      }
      mutex_.Lock();
      if (shutting_down_.load(std::memory_order_acquire)) {
        break;
      }
      // Wait for in-flight write groups and background jobs to drain:
      // a group leader may be appending to the WAL with mutex_ released,
      // and ResumeInternal is about to swap the log and memtable under
      // it.  Leaders arriving now fail fast on the latched error, so the
      // queue empties; Write() wakes us when it does.
      while (!writers_.empty() || bg_flush_scheduled_ ||
             bg_compactions_scheduled_ > 0) {
        if (shutting_down_.load(std::memory_order_acquire)) {
          break;
        }
        background_work_finished_signal_.Wait();
      }
      if (shutting_down_.load(std::memory_order_acquire)) {
        break;
      }
    }
    if (bg_error_.ok()) {
      break;  // a manual Resume() beat us to it
    }
    Status s = ResumeInternal(/*auto_recovery=*/true);
    rinfo.status = s;
    if (s.ok()) {
      metrics_->Add(obs::kRecoverySuccesses);
      for (const auto& listener : options_.listeners) {
        listener->OnErrorRecoveryEnd(rinfo);
      }
      break;
    }
    metrics_->Add(obs::kRecoveryFailures);
    if (s.IsCorruption()) {
      // The retry discovered on-disk damage: latch it as fatal (Set
      // replaces lower severities) and stop retrying.
      RecordBackgroundError(s, bg_error_.context().operation);
    }
    rinfo.escalated = !bg_error_.ok() &&
                      recovery_attempt_ >= options_.max_auto_recovery_attempts;
    for (const auto& listener : options_.listeners) {
      listener->OnErrorRecoveryEnd(rinfo);
    }
  }
  if (!bg_error_.ok() &&
      (bg_error_.severity() == ErrorSeverity::kTransient ||
       bg_error_.severity() == ErrorSeverity::kSoftError) &&
      recovery_attempt_ >= options_.max_auto_recovery_attempts) {
    // Retry budget exhausted: degrade to read-only until a manual
    // Resume() succeeds.
    bg_error_.Escalate();
    metrics_->Add(obs::kRecoveryEscalations);
    metrics_->SetGauge(obs::kErrorCurrentSeverity,
                       static_cast<uint64_t>(bg_error_.severity()));
    Log(options_.info_log,
        "Auto-recovery exhausted after %d attempts; degraded read-only: %s",
        recovery_attempt_, bg_error_.Describe().c_str());
    BOLT_SYNC_POINT("DBImpl::BackgroundRecovery:Escalated");
  }
  metrics_->SetGauge(obs::kRecoveryAttemptGauge, 0);
  recovery_scheduled_ = false;
  background_work_finished_signal_.SignalAll();
  if (!simulated()) {
    mutex_.Unlock();
  }
}

Status DBImpl::DegradedWriteError() {
  if (bg_error_.severity() == ErrorSeverity::kHardError ||
      bg_error_.severity() == ErrorSeverity::kFatal) {
    metrics_->Add(obs::kWritesRejectedReadOnly);
    return Status::ReadOnly(bg_error_.Describe());
  }
  // Transient/soft window: recovery is still working on it; surface the
  // original failure.
  return bg_error_.status();
}

void DBImpl::RecordWriteStall(const obs::WriteStallInfo& info) {
  obs::PerfContext* pc = obs::GetPerfContext();
  pc->write_stall_ns += info.duration_ns;
  if (info.cause == obs::WriteStallInfo::Cause::kL0SlowDown) {
    metrics_->Add(obs::kSlowdownWrites);
    pc->write_slowdowns++;
  } else {
    metrics_->Add(obs::kStallWrites);
    metrics_->Add(obs::kStallMicros, info.duration_ns / 1000);
    if (options_.enable_perf_context) {
      metrics_->RecordHist(obs::kStallNs, info.duration_ns);
    }
  }
  for (const auto& listener : options_.listeners) {
    listener->OnWriteStall(info);
  }
}

void DBImpl::StatsDumpLoop() {
  // Timer thread: wake every stats_dump_period_sec and enqueue a dump
  // task on the low-priority pool lane (so the dump itself competes
  // with compactions, not with foreground writes).
  const uint64_t period_micros =
      static_cast<uint64_t>(options_.stats_dump_period_sec) * 1000000;
  mutex_.Lock();
  while (!shutting_down_.load(std::memory_order_acquire)) {
    stats_cv_.TimedWaitMicros(period_micros);
    if (shutting_down_.load(std::memory_order_acquire)) {
      break;
    }
    if (!stats_dump_scheduled_) {
      stats_dump_scheduled_ = true;
      env_->Schedule(&DBImpl::BGStatsDumpWork, this, Env::Priority::kLow);
    }
  }
  mutex_.Unlock();
}

void DBImpl::BGStatsDumpWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundStatsDump();
}

void DBImpl::BackgroundStatsDump() {
  // The dump reads only the (internally synchronized) registry and the
  // info log; mutex_ is taken just to clear the scheduling flag.  The
  // destructor waits for stats_dump_scheduled_ to drain, so metrics_
  // and info_log are alive for the duration.
  const uint64_t now_ns = env_->NowNanos();
  const double interval_sec =
      static_cast<double>(now_ns - stats_last_dump_ns_) / 1e9;
  stats_last_dump_ns_ = now_ns;
  const std::string delta =
      metrics_->SnapshotDelta(&stats_last_snapshot_, interval_sec);
  Log(options_.info_log, "------- stats (last %.1fs) -------\n%s",
      interval_sec, delta.c_str());

  MutexLock l(&mutex_);
  stats_dump_scheduled_ = false;
  background_work_finished_signal_.SignalAll();
}

void DBImpl::MaybeScheduleFlush() {
  // Real Env only.
  if (bg_flush_scheduled_) {
    // Already queued or running
  } else if (shutting_down_.load(std::memory_order_acquire)) {
    // DB is being deleted; no more background work
  } else if (!bg_error_.ok()) {
    // Already got an error; no more changes
  } else if (imm_ == nullptr) {
    // Nothing to flush
  } else {
    bg_flush_scheduled_ = true;
    // With a dedicated lane the flush never queues behind a large
    // compaction; at max_background_jobs == 1 both job kinds share the
    // single low-priority thread, as in classic LevelDB.
    env_->Schedule(&DBImpl::BGFlushWork, this,
                   flush_lane_dedicated_ ? Env::Priority::kHigh
                                         : Env::Priority::kLow);
  }
}

void DBImpl::MaybeScheduleCompaction() {
  if (simulated()) {
    if (!in_sim_background_) {
      RunBackgroundWorkInlineSim();
    }
    return;
  }
  MaybeScheduleFlush();
  if (shutting_down_.load(std::memory_order_acquire)) {
    // DB is being deleted; no more background compactions
  } else if (!bg_error_.ok()) {
    // Already got an error; no more changes
  } else if (manual_compaction_ == nullptr &&
             !versions_->NeedsCompaction()) {
    // No compaction work to be done
  } else if (bg_compactions_scheduled_ >= max_compaction_jobs_) {
    // Lane is saturated; a finishing job reschedules.
  } else if (manual_compaction_ != nullptr && bg_compactions_scheduled_ > 0) {
    // Manual compactions run exclusively: wait for the lane to drain so
    // exactly one job picks up the manual range.
  } else {
    bg_compactions_scheduled_++;
    env_->Schedule(&DBImpl::BGWork, this, Env::Priority::kLow);
  }
}

void DBImpl::RunBackgroundWorkInlineSim() {
  // Sim mode only.  Drains all pending background work inline, charging
  // the background lane.  Each job starts no earlier than the
  // foreground time that triggered it.
  in_sim_background_ = true;
  // The one real thread plays the background lane here: spans recorded
  // below carry the reserved background tid so the exported trace keeps
  // the lanes separate.
  obs::TidOverrideScope tid_scope(sim_bg_tid_);
  while (!shutting_down_.load(std::memory_order_acquire) && bg_error_.ok()) {
    if (imm_ != nullptr) {
      SimLaneScope scope(sim_, SimContext::kBgLane);
      sim_->SetLaneTime(SimContext::kBgLane,
                        sim_->LaneNow(SimContext::kFgLane));
      CompactMemTable();
    } else if (versions_->NeedsCompaction()) {
      SimLaneScope scope(sim_, SimContext::kBgLane);
      sim_->SetLaneTime(SimContext::kBgLane,
                        sim_->LaneNow(SimContext::kFgLane));
      BackgroundCompaction();
    } else {
      break;
    }
  }
  in_sim_background_ = false;
}

void DBImpl::BGWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundCall();
}

void DBImpl::BGFlushWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundFlushCall();
}

void DBImpl::BackgroundFlushCall() {
  MutexLock l(&mutex_);
  assert(bg_flush_scheduled_);
  if (shutting_down_.load(std::memory_order_acquire)) {
    // No more background work when shutting down.
  } else if (!bg_error_.ok()) {
    // No more background work after a background error.
  } else if (imm_ != nullptr && !imm_flush_active_) {
    imm_flush_active_ = true;
    CompactMemTable();
    imm_flush_active_ = false;
  }

  bg_flush_scheduled_ = false;

  // The flush may have pushed L0 over its trigger (and imm_ may already
  // have been replaced by a waiting writer).
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
}

void DBImpl::BackgroundCall() {
  MutexLock l(&mutex_);
  assert(bg_compactions_scheduled_ > 0);
  if (shutting_down_.load(std::memory_order_acquire)) {
    // No more background work when shutting down.
  } else if (!bg_error_.ok()) {
    // No more background work after a background error.
  } else {
    BackgroundCompaction();
  }

  bg_compactions_scheduled_--;
  metrics_->SetGauge(obs::kBgInFlightCompactions, bg_compactions_scheduled_);

  // Previous compaction may have produced too many files in a level —
  // and a pick deferred on a conflict retries here, after the in-flight
  // set shrank and the victim cursor moved on.
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
}

bool DBImpl::CompactionConflictsWithInFlight(const Compaction* c) const {
  if (compacting_tables_.empty()) return false;
  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      if (compacting_tables_.count(c->input(which, i)->table_id) > 0) {
        return true;
      }
    }
  }
  for (const TableMeta* f : c->promoted()) {
    if (compacting_tables_.count(f->table_id) > 0) {
      return true;
    }
  }
  return false;
}

void DBImpl::RegisterCompactionInputs(const Compaction* c) {
  // Ids only — key-range disjointness follows,
  // because SetupOtherInputs pulls *every* next-level table overlapping
  // a victim range into inputs_[1]: two compactions with disjoint table
  // sets necessarily have disjoint level/hull footprints.
  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      compacting_tables_.insert(c->input(which, i)->table_id);
    }
  }
  for (const TableMeta* f : c->promoted()) {
    compacting_tables_.insert(f->table_id);
  }
  if (merge_compactions_in_flight_ > 0) {
    metrics_->Add(obs::kParallelCompactions);
  }
  merge_compactions_in_flight_++;
}

void DBImpl::UnregisterCompactionInputs(const Compaction* c) {
  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      compacting_tables_.erase(c->input(which, i)->table_id);
    }
  }
  for (const TableMeta* f : c->promoted()) {
    compacting_tables_.erase(f->table_id);
  }
  merge_compactions_in_flight_--;
}

void DBImpl::BackgroundCompaction() {
  BOLT_SYNC_POINT("DBImpl::BackgroundCompaction:Start");
  if (!flush_lane_dedicated_ && imm_ != nullptr && !imm_flush_active_) {
    // Shared-lane mode: the flush job rides the same queue, but an
    // urgent imm_ is served first, as in classic LevelDB.  (With a
    // dedicated flush lane, touching imm_ here would race that lane.)
    imm_flush_active_ = true;
    CompactMemTable();
    imm_flush_active_ = false;
    return;
  }

  Compaction* c;
  bool is_manual = (manual_compaction_ != nullptr);
  InternalKey manual_end;
  if (is_manual) {
    if (merge_compactions_in_flight_ > 0) {
      // Exclusivity: wait until running compactions drain; their
      // completion reschedules us.
      return;
    }
    ManualCompaction* m = manual_compaction_;
    c = versions_->CompactRange(m->level, m->begin, m->end);
    m->done = (c == nullptr);
    if (c != nullptr) {
      // Settled promotion (+STL) may have moved every victim into
      // promoted(), leaving inputs_[0] empty.
      if (c->num_input_files(0) > 0) {
        manual_end = c->input(0, c->num_input_files(0) - 1)->largest;
      } else if (!c->promoted().empty()) {
        manual_end = c->promoted().back()->largest;
      } else {
        m->done = true;
      }
    }
  } else {
    // The picker skips every level whose candidate touches an in-flight
    // compaction, so concurrent jobs naturally land on disjoint work.
    c = versions_->PickCompaction(&compacting_tables_);
    if (c != nullptr && CompactionConflictsWithInFlight(c)) {
      // Safety net (the exclusion-aware pick should prevent this).
      // Don't reschedule immediately (that would spin); when any
      // running compaction completes, its BackgroundCall retries the
      // pick, and the round-robin cursor has moved past this range.
      delete c;
      return;
    }
  }

  // Track how many L0 runs this compaction removes (for the virtual
  // governor state in sim mode).
  int l0_runs_removed = 0;
  if (c != nullptr && c->level() == 0) {
    std::set<uint64_t> fns;
    for (int i = 0; i < c->num_input_files(0); i++) {
      fns.insert(c->input(0, i)->file_number);
    }
    l0_runs_removed = static_cast<int>(fns.size());
  }

  Status status;
  obs::CompactionJobInfo job;
  // Span covers the whole job — subcompaction shards, their data
  // barriers, and the MANIFEST commit all nest inside it.
  obs::SpanScope span(c != nullptr ? tracer_ : nullptr, "compaction");
  const uint64_t job_start_ns = env_->NowNanos();
  const uint64_t barriers_before = env_->GetIoStats().sync_calls;
  if (c != nullptr) {
    span.AddArg("level", c->level());
    job.level = c->level();
    job.victim_tables = c->num_input_files(0);
    job.next_level_tables = c->num_input_files(1);
    job.input_bytes = c->NumInputBytes(0) + c->NumInputBytes(1);
    for (const auto& listener : options_.listeners) {
      listener->OnCompactionBegin(job);
    }
  }
  if (c == nullptr) {
    // Nothing to do
  } else if (!is_manual && c->IsTrivialMove()) {
    // Move table to next level
    assert(c->num_input_files(0) == 1);
    TableMeta* f = c->input(0, 0);
    c->edit()->RemoveTable(c->level(), f->table_id);
    c->edit()->AddTable(c->level() + 1, *f);
    status = versions_->LogAndApply(c->edit());
    if (!status.ok()) {
      metrics_->Add(obs::kCompactionFailures);
      RecordBackgroundError(status, ErrorOperation::kManifestCommit);
    } else {
      metrics_->Add(obs::kTrivialMoves);
    }
    job.trivial_move = true;
  } else if (c->num_input_files(0) == 0 && c->num_input_files(1) == 0 &&
             !c->promoted().empty()) {
    // Pure settled compaction (+STL): every victim is promoted by a
    // metadata-only edit — the only I/O is the MANIFEST barrier.
    for (const TableMeta* f : c->promoted()) {
      c->edit()->RemoveTable(c->level(), f->table_id);
      c->edit()->AddTable(c->level() + 1, *f);
      metrics_->Add(obs::kSettledPromotions);
      metrics_->Add(obs::kSettledBytesSaved, f->size);
      job.settled_promotions++;
    }
    metrics_->Add(obs::kPureSettledCompactions);
    job.pure_settled = true;
    status = versions_->LogAndApply(c->edit());
    if (!status.ok()) {
      metrics_->Add(obs::kCompactionFailures);
      RecordBackgroundError(status, ErrorOperation::kManifestCommit);
    }
  } else {
    CompactionState* compact = new CompactionState(c);
    RegisterCompactionInputs(c);
    status = DoCompactionWork(compact);  // latches errors itself
    UnregisterCompactionInputs(c);
    job.output_bytes = compact->total_bytes_written();
    job.output_tables = compact->total_tables_written();
    job.subcompactions = compact->subs.size();
    if (status.ok()) {
      job.settled_promotions = c->promoted().size();
    }
    CleanupCompaction(compact);
    c->ReleaseInputs();
    RemoveObsoleteFiles();
  }

  if (c != nullptr && status.ok() && l0_runs_removed > 0 && simulated()) {
    AddL0Event(sim_->Now(), -l0_runs_removed);
  }
  if (c != nullptr) {
    span.SetStrArg("kind", job.trivial_move  ? "trivial_move"
                           : job.pure_settled ? "pure_settled"
                           : is_manual        ? "manual"
                                              : "merge");
    span.AddArg("input_bytes", job.input_bytes);
    span.AddArg("output_bytes", job.output_bytes);
    span.AddArg("barriers", env_->GetIoStats().sync_calls - barriers_before);
    job.barriers = env_->GetIoStats().sync_calls - barriers_before;
    job.duration_ns = env_->NowNanos() - job_start_ns;
    job.status = status;
    if (options_.enable_perf_context && !job.trivial_move &&
        !job.pure_settled) {
      metrics_->RecordHist(obs::kCompactionNs, job.duration_ns);
    }
    for (const auto& listener : options_.listeners) {
      listener->OnCompactionEnd(job);
    }
  }
  delete c;

  if (status.ok()) {
    // Done
  } else if (shutting_down_.load(std::memory_order_acquire)) {
    // Ignore compaction errors found during shutting down
  } else {
    Log(options_.info_log, "Compaction error: %s", status.ToString().c_str());
  }

  if (is_manual) {
    ManualCompaction* m = manual_compaction_;
    if (!status.ok()) {
      m->done = true;
    }
    if (!m->done) {
      // We only compacted part of the requested range.  Update *m
      // to the range that is left to be compacted.
      m->tmp_storage = manual_end;
      m->begin = &m->tmp_storage;
    }
    manual_compaction_ = nullptr;
  }
}

void DBImpl::CleanupCompaction(CompactionState* compact) {
  for (auto& sub : compact->subs) {
    if (sub.writer != nullptr) {
      sub.writer->Abandon();
    }
    delete sub.input;
    sub.input = nullptr;
  }
  for (uint64_t n : compact->allocated_numbers) {
    pending_outputs_.erase(n);
  }
  delete compact;
}

Status DBImpl::DoCompactionWork(CompactionState* compact) {
  assert(versions_->NumLevelTables(compact->compaction->level()) > 0);
  assert(compact->subs.empty());

  if (snapshots_.empty()) {
    compact->smallest_snapshot = versions_->LastSequence();
  } else {
    compact->smallest_snapshot = snapshots_.oldest()->sequence_number();
  }

  Compaction* c = compact->compaction;

  // Shard the victim key range at input-table boundaries.  Boundaries
  // are whole user keys, so each user key's version run stays within one
  // shard and the snapshot/tombstone drop logic needs no cross-shard
  // coordination.  FLSM levels overlap internally, so they stay serial.
  std::vector<std::string> boundaries;
  if (!simulated() && options_.max_subcompactions > 1 && !options_.flsm_mode) {
    std::vector<std::string> candidates;
    for (int which = 0; which < 2; which++) {
      for (int i = 0; i < c->num_input_files(which); i++) {
        const Slice k = c->input(which, i)->largest.user_key();
        candidates.emplace_back(k.data(), k.size());
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [this](const std::string& a, const std::string& b) {
                return user_comparator()->Compare(a, b) < 0;
              });
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    if (!candidates.empty()) {
      candidates.pop_back();  // overall max: splitting there is a no-op
    }
    const size_t shards =
        std::min(static_cast<size_t>(options_.max_subcompactions),
                 candidates.size() + 1);
    for (size_t i = 1; i < shards; i++) {
      const std::string& b = candidates[i * candidates.size() / shards];
      if (boundaries.empty() || boundaries.back() != b) {
        boundaries.push_back(b);
      }
    }
  }

  compact->subs.resize(boundaries.size() + 1);
  for (size_t i = 0; i < compact->subs.size(); i++) {
    SubcompactionState& sub = compact->subs[i];
    sub.shard = static_cast<int>(i);
    sub.num_shards = static_cast<int>(compact->subs.size());
    if (i > 0) {
      sub.has_start = true;
      sub.start = boundaries[i - 1];
    }
    if (i < boundaries.size()) {
      sub.has_end = true;
      sub.end = boundaries[i];
    }
    sub.writer = std::make_unique<OutputWriter>(
        options_, dbname_, [this, compact]() {
          MutexLock l(&mutex_);
          uint64_t n = versions_->NewFileNumber();
          pending_outputs_.insert(n);
          compact->allocated_numbers.push_back(n);
          return n;
        });
    sub.iter_state = c->NewIterState();
    sub.input = versions_->MakeInputIterator(c);
  }

  // Release mutex while we're actually doing the compaction work
  mutex_.Unlock();

  if (compact->subs.size() == 1) {
    // Shared-lane mode additionally services imm_ inline mid-loop, so a
    // single background thread never starves flushes (classic LevelDB).
    RunSubcompaction(compact, &compact->subs[0],
                     /*may_flush_imm=*/!flush_lane_dedicated_);
  } else {
    metrics_->Add(obs::kSubcompactions, compact->subs.size());
    // Each shard streams into its own compaction file and issues its
    // data barrier on its own thread: the wall-clock barrier cost of the
    // whole group is max(shard fsync) instead of the serial sum, while
    // the logical accounting stays at data-barriers + 1 MANIFEST commit.
    std::vector<std::thread> shard_threads;
    shard_threads.reserve(compact->subs.size() - 1);
    for (size_t i = 1; i < compact->subs.size(); i++) {
      SubcompactionState* sub = &compact->subs[i];
      shard_threads.emplace_back([this, compact, sub]() {
        RunSubcompaction(compact, sub, /*may_flush_imm=*/false);
      });
    }
    RunSubcompaction(compact, &compact->subs[0], /*may_flush_imm=*/false);
    for (std::thread& t : shard_threads) {
      t.join();
    }
  }

  Status status;
  for (const auto& sub : compact->subs) {
    if (!sub.status.ok()) {
      status = sub.status;
      break;
    }
  }

  mutex_.Lock();

  ErrorOperation failed_op = ErrorOperation::kCompaction;
  if (status.ok()) {
    status = InstallCompactionResults(compact);
    if (!status.ok()) {
      failed_op = ErrorOperation::kManifestCommit;
    }
  }
  // Data barriers issued by the shards: committed if the MANIFEST edit
  // installed the outputs, orphaned if the job failed (the files are
  // deleted by the next RemoveObsoleteFiles pass).  Together with the
  // flush-side accounting this keeps
  // env.sync.compaction_file == barrier.data.committed + orphaned exact
  // across fault/recover cycles.
  uint64_t data_syncs = 0;
  for (const auto& sub : compact->subs) {
    if (sub.writer != nullptr) {
      data_syncs += sub.writer->sync_calls();
    }
  }
  metrics_->Add(status.ok() ? obs::kDataBarriersCommitted
                            : obs::kDataBarriersOrphaned,
                data_syncs);
  if (!status.ok()) {
    metrics_->Add(obs::kCompactionFailures);
    RecordBackgroundError(status, failed_op);
  }
  return status;
}

void DBImpl::RunSubcompaction(CompactionState* compact,
                              SubcompactionState* sub, bool may_flush_imm) {
  // Everything mutated here is shard-local (sub->*); shared state is
  // reached only under mutex_ (inline flush, the writer's number
  // allocator).
  Compaction* c = compact->compaction;
  Iterator* input = sub->input;

  const uint64_t shard_start_ns = env_->NowNanos();
  obs::SpanScope span(tracer_, "subcompaction");
  span.AddArg("shard", sub->shard);
  obs::SubcompactionInfo sub_info;
  sub_info.shard = sub->shard;
  sub_info.num_shards = sub->num_shards;
  sub_info.level = c->level();
  for (const auto& listener : options_.listeners) {
    listener->OnSubcompactionBegin(sub_info);
  }

  if (sub->has_start) {
    // Position strictly after every version of user key sub->start:
    // (start, seq=0, type=0) sorts after all real entries of that key
    // (internal ordering is user key asc, then sequence desc).
    InternalKey after(sub->start, 0, static_cast<ValueType>(0));
    input->Seek(after.Encode());
  } else {
    input->SeekToFirst();
  }

  Status status;
  ParsedInternalKey ikey;
  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  const uint64_t compaction_cpu_ns = static_cast<uint64_t>(
      options_.sim_compaction_cpu_per_entry_ns / options_.bg_parallelism);

  while (input->Valid() && !shutting_down_.load(std::memory_order_acquire)) {
    // Prioritize immutable compaction work (shared-lane PosixEnv only;
    // with a dedicated flush lane the high-priority lane handles imm_,
    // and in sim mode flushes and compactions are serialized inline).
    if (may_flush_imm && !simulated() &&
        has_imm_.load(std::memory_order_relaxed)) {
      mutex_.Lock();
      if (imm_ != nullptr && !imm_flush_active_) {
        imm_flush_active_ = true;
        CompactMemTable();
        imm_flush_active_ = false;
        // Wake up MakeRoomForWrite() if necessary.
        background_work_finished_signal_.SignalAll();
      }
      mutex_.Unlock();
    } else if (!may_flush_imm && !simulated() &&
               has_imm_.load(std::memory_order_relaxed)) {
      // Dedicated-lane mode: the flush lane owns imm_, but on machines
      // with fewer cores than background threads a merge loop here
      // would starve it of CPU — and writers stall on exactly that
      // flush.  Back off until the lane drains imm_; a flush lasts a
      // few ms, so compaction loses little and write tail latency wins.
      env_->SleepForMicroseconds(200);
    }

    Slice key = input->key();
    if (sub->has_end &&
        user_comparator()->Compare(ExtractUserKey(key), sub->end) > 0) {
      break;  // past this shard's upper bound; the next shard owns it
    }

    // ShouldStopBefore is evaluated for every key so the grandparent-
    // overlap state keeps advancing; cuts apply only to non-empty
    // outputs and never split a user key's version run across tables.
    const bool boundary_cut = c->ShouldStopBefore(key, &sub->iter_state);
    if (sub->writer->current_table_entries() > 0 &&
        (boundary_cut || sub->writer->CurrentTableFull()) &&
        sub->writer->SafeToCutBefore(key)) {
      status = sub->writer->FinishTable();
      if (!status.ok()) {
        break;
      }
    }

    // Handle key/value, add to state, etc.
    bool drop = false;
    if (!ParseInternalKey(key, &ikey)) {
      // Do not hide error keys
      current_user_key.clear();
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!has_current_user_key ||
          user_comparator()->Compare(ikey.user_key, Slice(current_user_key)) !=
              0) {
        // First occurrence of this user key
        current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }

      if (last_sequence_for_key <= compact->smallest_snapshot) {
        // Hidden by an newer entry for same user key
        drop = true;  // (A)
      } else if (ikey.type == kTypeDeletion &&
                 ikey.sequence <= compact->smallest_snapshot &&
                 c->IsBaseLevelForKey(ikey.user_key, &sub->iter_state)) {
        // For this user key:
        // (1) there is no data in higher levels
        // (2) data in lower levels will have larger sequence numbers
        // (3) data in layers that are being compacted here and have
        //     smaller sequence numbers will be dropped in the next
        //     few iterations of this loop (by rule (A) above).
        // Therefore this deletion marker is obsolete and can be dropped.
        drop = true;
      }

      last_sequence_for_key = ikey.sequence;
    }

    if (!drop) {
      status = sub->writer->Add(key, input->value());
      if (!status.ok()) {
        break;
      }
    }

    sub->entries_processed++;
    if (simulated() && compaction_cpu_ns > 0) {
      sim_->AdvanceCpu(compaction_cpu_ns);
    }

    input->Next();
  }

  if (status.ok() && shutting_down_.load(std::memory_order_acquire)) {
    status = Status::IOError("Deleting DB during compaction");
  }
  if (status.ok()) {
    status = sub->writer->Finish();
  } else {
    sub->writer->Abandon();
  }
  if (status.ok()) {
    status = input->status();
  }
  delete input;
  sub->input = nullptr;

  sub->status = status;

  sub_info.entries = sub->entries_processed;
  sub_info.output_bytes = sub->writer->bytes_written();
  sub_info.sync_calls = sub->writer->sync_calls();
  sub_info.duration_ns = env_->NowNanos() - shard_start_ns;
  sub_info.status = status;
  for (const auto& listener : options_.listeners) {
    listener->OnSubcompactionEnd(sub_info);
  }
  span.AddArg("entries", sub->entries_processed);
  span.AddArg("output_bytes", sub_info.output_bytes);
  span.AddArg("sync_calls", sub_info.sync_calls);
}

Status DBImpl::InstallCompactionResults(CompactionState* compact) {
  Compaction* c = compact->compaction;

  uint64_t files_created = 0;
  for (const auto& sub : compact->subs) {
    files_created += sub.writer->file_numbers().size();
  }
  metrics_->Add(obs::kCompactions);
  metrics_->Add(obs::kCompactionBytesRead,
                c->NumInputBytes(0) + c->NumInputBytes(1));
  metrics_->Add(obs::kCompactionBytesWritten, compact->total_bytes_written());
  metrics_->Add(obs::kCompactionOutputTables, compact->total_tables_written());
  metrics_->Add(obs::kCompactionFilesCreated, files_created);

  // Add compaction outputs.  Shards are in key order, so appending their
  // outputs in order keeps the new level+1 run sorted.  All shards merge
  // into this single edit: one atomic MANIFEST commit for the whole
  // group, exactly as in the serial path.
  c->AddInputDeletions(c->edit());
  const int level = c->level();
  for (const auto& sub : compact->subs) {
    for (const TableMeta& meta : sub.writer->outputs()) {
      c->edit()->AddTable(level + 1, meta);
    }
  }

  // Settled promotions (+STL): move zero-overlap victims by metadata
  // edit only.
  for (const TableMeta* f : c->promoted()) {
    c->edit()->RemoveTable(level, f->table_id);
    c->edit()->AddTable(level + 1, *f);
    metrics_->Add(obs::kSettledPromotions);
    metrics_->Add(obs::kSettledBytesSaved, f->size);
  }

  BOLT_SYNC_POINT("DBImpl::InstallCompactionResults:BeforeManifestCommit");
  Status s = versions_->LogAndApply(c->edit());
  if (s.ok()) {
    // Dead logical SSTables inside still-live compaction files become
    // zombies awaiting hole punching (promoted tables stay live).
    for (int which = 0; which < 2; which++) {
      for (int i = 0; i < c->num_input_files(which); i++) {
        const TableMeta* f = c->input(which, i);
        if (f->file_type == kCompactionFile) {
          zombies_.push_back(
              {f->table_id, f->file_number, f->offset, f->size});
        }
      }
    }
  }
  return s;
}

// Convenience methods
Status DBImpl::Put(const WriteOptions& o, const Slice& key,
                   const Slice& val) {
  WriteBatch batch;
  batch.Put(key, val);
  return Write(o, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  if (simulated()) {
    // Single-threaded simulation: no writer queue, but the same
    // MakeRoomForWrite governor logic, on the virtual clock.
    MutexLock l(&mutex_);
    const bool timed = options_.enable_perf_context && updates != nullptr;
    obs::PerfContext* pc = obs::GetPerfContext();
    const uint64_t wstart = timed ? env_->NowNanos() : 0;
    if (updates != nullptr) {
      sim_->AdvanceCpu(options_.sim_write_cpu_ns *
                       WriteBatchInternal::Count(updates));
    }
    Status status = MakeRoomForWrite(updates == nullptr);
    uint64_t last_sequence = versions_->LastSequence();
    if (status.ok() && updates != nullptr) {
      WriteBatchInternal::SetSequence(updates, last_sequence + 1);
      last_sequence += WriteBatchInternal::Count(updates);
      metrics_->Add(obs::kNumKeysWritten, WriteBatchInternal::Count(updates));
      const Slice contents = WriteBatchInternal::Contents(updates);
      metrics_->Add(obs::kWalBytesAppended, contents.size());
      uint64_t t0 = timed ? env_->NowNanos() : 0;
      ErrorOperation wal_op = ErrorOperation::kWalAppend;
      {
        obs::SpanScope wal_span(tracer_, "wal_append");
        wal_span.AddArg("bytes", contents.size());
        BOLT_SYNC_POINT("DBImpl::Write:BeforeWalAppend");
        status = log_->AddRecord(contents);
      }
      if (timed) {
        const uint64_t t1 = env_->NowNanos();
        pc->wal_append_ns += t1 - t0;
        t0 = t1;
      }
      if (status.ok() && options.sync) {
        wal_op = ErrorOperation::kWalSync;  // append succeeded
        obs::SpanScope sync_span(tracer_, "wal_sync");
        BOLT_SYNC_POINT("DBImpl::Write:BeforeWalSync");
        status = logfile_->Sync();
        sync_span.Finish();
        metrics_->Add(obs::kWalSyncs);
        pc->barrier_waits++;
        obs::SyncBarrierInfo sb;
        sb.wal = true;
        if (timed) {
          const uint64_t t1 = env_->NowNanos();
          pc->wal_sync_ns += t1 - t0;
          sb.duration_ns = t1 - t0;
          metrics_->RecordHist(obs::kWalSyncNs, sb.duration_ns);
          t0 = t1;
        }
        for (const auto& listener : options_.listeners) {
          listener->OnSyncBarrier(sb);
        }
      }
      if (!status.ok()) {
        // The WAL tail is indeterminate: a torn record may be sitting
        // before anything we append later, and the log reader drops
        // everything past a corruption, so later acked writes could
        // silently vanish on recovery.  Latch the error; writes are
        // rejected until Resume() rotates to a fresh WAL.
        RecordBackgroundError(status, wal_op, true, kLogFile,
                              LogFileName(dbname_, logfile_number_));
      }
      if (status.ok()) {
        const uint64_t m0 = timed ? env_->NowNanos() : 0;
        status = WriteBatchInternal::InsertInto(updates, mem_);
        if (timed) {
          pc->memtable_insert_ns += env_->NowNanos() - m0;
        }
      }
      versions_->SetLastSequence(last_sequence);
    }
    if (timed) {
      metrics_->RecordHist(obs::kWriteLatencyNs, env_->NowNanos() - wstart);
    }
    return status;
  }

  const bool timed = options_.enable_perf_context && updates != nullptr;
  obs::PerfContext* pc = obs::GetPerfContext();
  const uint64_t wstart = timed ? env_->NowNanos() : 0;

  Writer w(&mutex_);
  w.batch = updates;
  w.sync = options.sync;
  w.done = false;

  MutexLock l(&mutex_);
  if (!bg_error_.ok()) {
    // Fail fast without joining the queue: this keeps the queue draining
    // while an error is latched (the RecoveryManager waits for exactly
    // that) and gives degraded-mode writers the read-only error.
    return DegradedWriteError();
  }
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.Wait();
  }
  if (w.done) {
    // Another writer committed our batch as part of its group.
    if (timed) {
      metrics_->RecordHist(obs::kWriteLatencyNs, env_->NowNanos() - wstart);
    }
    return w.status;
  }

  // May temporarily unlock and wait.
  Status status = MakeRoomForWrite(updates == nullptr);
  uint64_t last_sequence = versions_->LastSequence();
  Writer* last_writer = &w;
  if (status.ok() && updates != nullptr) {  // nullptr batch is for compactions
    bool group_sync = false;
    int sync_requests = 0;
    WriteBatch* write_batch =
        BuildBatchGroup(&last_writer, &group_sync, &sync_requests);
    WriteBatchInternal::SetSequence(write_batch, last_sequence + 1);
    last_sequence += WriteBatchInternal::Count(write_batch);

    // Add to log and apply to memtable.  We can release the lock
    // during this phase since &w is currently responsible for logging
    // and protects against concurrent loggers and concurrent writes
    // into mem_.
    {
      mutex_.Unlock();
      // Span covers the group leader's commit: WAL append, the optional
      // WAL barrier, and the memtable insert for the whole group.
      obs::SpanScope group_span(tracer_, "write_group");
      metrics_->Add(obs::kNumKeysWritten,
                    WriteBatchInternal::Count(write_batch));
      const Slice contents = WriteBatchInternal::Contents(write_batch);
      group_span.AddArg("entries", WriteBatchInternal::Count(write_batch));
      group_span.AddArg("bytes", contents.size());
      metrics_->Add(obs::kWalBytesAppended, contents.size());
      uint64_t t0 = timed ? env_->NowNanos() : 0;
      ErrorOperation wal_op = ErrorOperation::kWalAppend;
      {
        obs::SpanScope wal_span(tracer_, "wal_append");
        wal_span.AddArg("bytes", contents.size());
        BOLT_SYNC_POINT("DBImpl::Write:BeforeWalAppend");
        status = log_->AddRecord(contents);
      }
      if (timed) {
        const uint64_t t1 = env_->NowNanos();
        pc->wal_append_ns += t1 - t0;
        t0 = t1;
      }
      bool wal_error = false;
      if (status.ok() && group_sync) {
        wal_op = ErrorOperation::kWalSync;  // append succeeded
        obs::SpanScope sync_span(tracer_, "wal_sync");
        sync_span.AddArg("sync_requests", sync_requests);
        BOLT_SYNC_POINT("DBImpl::Write:BeforeWalSync");
        status = logfile_->Sync();
        sync_span.Finish();
        // One physical fsync covers the whole group: kWalSyncs counts
        // actual barriers (charged once), kWalGroupSyncShared counts the
        // sync requests that rode an already-paid barrier for free.
        metrics_->Add(obs::kWalSyncs);
        if (sync_requests > 1) {
          metrics_->Add(obs::kWalGroupSyncShared, sync_requests - 1);
        }
        pc->barrier_waits++;
        obs::SyncBarrierInfo sb;
        sb.wal = true;
        if (timed) {
          const uint64_t t1 = env_->NowNanos();
          pc->wal_sync_ns += t1 - t0;
          sb.duration_ns = t1 - t0;
          metrics_->RecordHist(obs::kWalSyncNs, sb.duration_ns);
          t0 = t1;
        }
        for (const auto& listener : options_.listeners) {
          listener->OnSyncBarrier(sb);
        }
      }
      if (!status.ok()) {
        // The state of the log file is indeterminate: a failed append
        // may have left a torn record and a failed sync may or may not
        // have persisted the record, so anything appended afterwards
        // could be dropped by the log reader on recovery.  Force the DB
        // into a mode where all future writes fail until Resume().
        wal_error = true;
      }
      if (status.ok()) {
        const uint64_t m0 = timed ? env_->NowNanos() : 0;
        status = WriteBatchInternal::InsertInto(write_batch, mem_);
        if (timed) {
          pc->memtable_insert_ns += env_->NowNanos() - m0;
        }
      }
      group_span.Finish();
      mutex_.Lock();
      if (wal_error) {
        RecordBackgroundError(status, wal_op, true, kLogFile,
                              LogFileName(dbname_, logfile_number_));
      }
    }
    if (write_batch == tmp_batch_) tmp_batch_->Clear();

    versions_->SetLastSequence(last_sequence);
  }

  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.Signal();
    }
    if (ready == last_writer) break;
  }

  // Notify new head of write queue
  if (!writers_.empty()) {
    writers_.front()->cv.Signal();
  } else {
    // The recovery paths (auto and manual Resume) wait for the writer
    // queue to drain before swapping the WAL and memtable under a
    // mid-flight group leader.
    background_work_finished_signal_.SignalAll();
  }

  if (timed) {
    metrics_->RecordHist(obs::kWriteLatencyNs, env_->NowNanos() - wstart);
  }
  return status;
}

// REQUIRES: writer list non-empty; first writer has a non-null batch
WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer, bool* group_sync,
                                    int* sync_requests) {
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);

  size_t size = WriteBatchInternal::ByteSize(first->batch);

  // Allow the group to grow up to a maximum size, but if the original
  // write is small, limit the growth so we do not slow down the small
  // write too much.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  // Shared WAL group sync (DESIGN.md §14): instead of cutting the group
  // when a sync writer queues behind a non-sync leader, the leader
  // *upgrades* — one fsync covers every member, charged once.  A group
  // is durable iff any member asked for durability, which is exactly
  // what each sync member observes; non-sync members get a stronger
  // guarantee than they asked for at the cost of riding the barrier.
  *group_sync = first->sync;
  *sync_requests = first->sync ? 1 : 0;

  *last_writer = first;
  std::deque<Writer*>::iterator iter = writers_.begin();
  ++iter;  // Advance past "first"
  for (; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (w->batch != nullptr) {
      size += WriteBatchInternal::ByteSize(w->batch);
      if (size > max_size) {
        // Do not make batch too big
        break;
      }

      // Append to *result
      if (result == first->batch) {
        // Switch to temporary batch instead of disturbing caller's batch
        result = tmp_batch_;
        assert(WriteBatchInternal::Count(result) == 0);
        WriteBatchInternal::Append(result, first->batch);
      }
      WriteBatchInternal::Append(result, w->batch);
    }
    if (w->sync) {
      *group_sync = true;
      ++*sync_requests;
    }
    *last_writer = w;
  }
  return result;
}

int DBImpl::VirtualL0Runs(uint64_t now) {
  while (!vl0_events_.empty() && vl0_events_.front().first <= now) {
    vl0_runs_ += vl0_events_.front().second;
    vl0_events_.pop_front();
  }
  return vl0_runs_;
}

void DBImpl::AddL0Event(uint64_t time, int delta) {
  // Background work is FIFO on a single lane, so completion times are
  // nondecreasing; guard anyway so a foreground-lane flush (recovery)
  // cannot break the ordering invariant.
  if (!vl0_events_.empty() && time < vl0_events_.back().first) {
    time = vl0_events_.back().first;
  }
  vl0_events_.emplace_back(time, delta);
}

uint64_t DBImpl::NextL0DropTime(uint64_t now) {
  for (const auto& [time, delta] : vl0_events_) {
    if (delta < 0 && time > now) {
      return time;
    }
  }
  return now;
}

// REQUIRES (PosixEnv): this thread is currently at the front of the
// writer queue
Status DBImpl::MakeRoomForWrite(bool force) {
  bool allow_delay = !force;
  Status s;

  if (simulated()) {
    while (true) {
      const uint64_t now = sim_->LaneNow(SimContext::kFgLane);
      if (!bg_error_.ok()) {
        if (recovery_scheduled_) {
          // The owed auto-recovery attempt runs here, inline on the
          // virtual clock (MaybeScheduleRecovery defers it in sim mode).
          BackgroundRecovery();
          if (bg_error_.ok()) {
            continue;
          }
        }
        s = DegradedWriteError();
        break;
      }
      if (allow_delay && options_.enable_l0_slowdown &&
          VirtualL0Runs(now) >= options_.l0_slowdown_writes_trigger) {
        // The L0SlowDown governor (§2.3): 1 ms penalty, applied once.
        sim_->AdvanceCpu(options_.slowdown_sleep_micros * 1000);
        obs::WriteStallInfo ws;
        ws.cause = obs::WriteStallInfo::Cause::kL0SlowDown;
        ws.duration_ns = options_.slowdown_sleep_micros * 1000;
        RecordWriteStall(ws);
        allow_delay = false;
        continue;
      }
      if (!force &&
          mem_->ApproximateMemoryUsage() <= options_.write_buffer_size) {
        break;
      }
      if (imm_done_time_ > now) {
        // The previous flush has not (virtually) finished: the write
        // stall.  Block the foreground until the background catches up.
        obs::WriteStallInfo ws;
        ws.cause = obs::WriteStallInfo::Cause::kMemtableFull;
        ws.duration_ns = imm_done_time_ - now;
        RecordWriteStall(ws);
        sim_->SetLaneTime(SimContext::kFgLane, imm_done_time_);
        continue;
      }
      if (options_.enable_l0_stop &&
          VirtualL0Runs(now) >= options_.l0_stop_writes_trigger) {
        // The L0Stop governor: wait for a compaction to drain level 0.
        const uint64_t t = NextL0DropTime(now);
        if (t > now) {
          obs::WriteStallInfo ws;
          ws.cause = obs::WriteStallInfo::Cause::kL0Stop;
          ws.duration_ns = t - now;
          RecordWriteStall(ws);
          sim_->SetLaneTime(SimContext::kFgLane, t);
          continue;
        }
        // No pending drop event: all compactions have (virtually)
        // completed; fall through.
        (void)VirtualL0Runs(t);
      }
      // Switch to a new memtable and trigger a flush of the old one.
      uint64_t new_log_number = versions_->NewFileNumber();
      std::unique_ptr<WritableFile> lfile;
      s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
      if (!s.ok()) {
        versions_->ReuseFileNumber(new_log_number);
        break;
      }
      delete log_;
      delete logfile_;
      logfile_ = lfile.release();
      logfile_number_ = new_log_number;
      log_ = new log::Writer(logfile_);
      imm_ = mem_;
      has_imm_.store(true, std::memory_order_release);
      mem_ = new MemTable(internal_comparator_);
      mem_->Ref();
      force = false;  // Do not force another compaction if have room
      MaybeScheduleCompaction();  // Runs inline on the background lane.
    }
    return s;
  }

  assert(!writers_.empty());
  while (true) {
    if (!bg_error_.ok()) {
      // Yield previous error (a read-only rejection once degraded).
      s = DegradedWriteError();
      break;
    } else if (allow_delay && options_.enable_l0_slowdown &&
               versions_->current()->NumLevelRuns(0) >=
                   options_.l0_slowdown_writes_trigger) {
      // Governors count L0 *runs* (physical files): with BoLT a single
      // flush produces one compaction file holding many logical tables,
      // and must count as one run, exactly like one stock L0 table.
      // We are getting close to hitting a hard limit on the number of
      // L0 files.  Rather than delaying a single write by several
      // seconds when we hit the hard limit, start delaying each
      // individual write by 1ms to reduce latency variance.
      mutex_.Unlock();
      env_->SleepForMicroseconds(
          static_cast<int>(options_.slowdown_sleep_micros));
      mutex_.Lock();
      obs::WriteStallInfo ws;
      ws.cause = obs::WriteStallInfo::Cause::kL0SlowDown;
      ws.duration_ns = options_.slowdown_sleep_micros * 1000;
      RecordWriteStall(ws);
      allow_delay = false;  // Do not delay a single write more than once
    } else if (!force &&
               (mem_->ApproximateMemoryUsage() <= options_.write_buffer_size)) {
      // There is room in current memtable
      break;
    } else if (imm_ != nullptr) {
      // We have filled up the current memtable, but the previous
      // one is still being compacted, so we wait.
      const uint64_t t0 = env_->NowNanos();
      background_work_finished_signal_.Wait();
      obs::WriteStallInfo ws;
      ws.cause = obs::WriteStallInfo::Cause::kMemtableFull;
      ws.duration_ns = env_->NowNanos() - t0;
      RecordWriteStall(ws);
    } else if (options_.enable_l0_stop &&
               versions_->current()->NumLevelRuns(0) >=
                   options_.l0_stop_writes_trigger) {
      // There are too many level-0 files.
      const uint64_t t0 = env_->NowNanos();
      background_work_finished_signal_.Wait();
      obs::WriteStallInfo ws;
      ws.cause = obs::WriteStallInfo::Cause::kL0Stop;
      ws.duration_ns = env_->NowNanos() - t0;
      RecordWriteStall(ws);
    } else {
      // Attempt to switch to a new memtable and trigger compaction of old
      assert(versions_->PrevLogNumber() == 0);
      uint64_t new_log_number = versions_->NewFileNumber();
      std::unique_ptr<WritableFile> lfile;
      s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
      if (!s.ok()) {
        // Avoid chewing through file number space in a tight loop.
        versions_->ReuseFileNumber(new_log_number);
        break;
      }
      delete log_;
      delete logfile_;
      logfile_ = lfile.release();
      logfile_number_ = new_log_number;
      log_ = new log::Writer(logfile_);
      imm_ = mem_;
      has_imm_.store(true, std::memory_order_release);
      mem_ = new MemTable(internal_comparator_);
      mem_->Ref();
      force = false;  // Do not force another compaction if have room
      MaybeScheduleCompaction();
    }
  }
  return s;
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  Status s;
  const bool timed = options_.enable_perf_context;
  obs::PerfContext* pc = obs::GetPerfContext();
  const uint64_t gstart = timed ? env_->NowNanos() : 0;
  metrics_->Add(obs::kNumKeysRead);
  MutexLock l(&mutex_);
  if (simulated()) {
    sim_->AdvanceCpu(options_.sim_read_cpu_ns);
  }
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot =
        static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = versions_->LastSequence();
  }

  MemTable* mem = mem_;
  MemTable* imm = imm_;
  Version* current = versions_->current();
  mem->Ref();
  if (imm != nullptr) imm->Ref();
  current->Ref();

  bool have_stat_update = false;
  Version::GetStats stats;

  // Unlock while reading from files and memtables
  {
    mutex_.Unlock();
    // First look in the memtable, then in the immutable memtable (if
    // any).
    LookupKey lkey(key, snapshot);
    uint64_t t0 = timed ? env_->NowNanos() : 0;
    if (mem->Get(lkey, value, &s)) {
      pc->get_from_memtable++;
      if (timed) pc->memtable_get_ns += env_->NowNanos() - t0;
    } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
      pc->get_from_memtable++;
      if (timed) pc->memtable_get_ns += env_->NowNanos() - t0;
    } else {
      if (timed) {
        const uint64_t t1 = env_->NowNanos();
        pc->memtable_get_ns += t1 - t0;
        t0 = t1;
      }
      s = current->Get(options, lkey, value, &stats);
      if (timed) pc->sstable_get_ns += env_->NowNanos() - t0;
      have_stat_update = true;
    }
    mutex_.Lock();
  }

  if (have_stat_update && current->UpdateStats(stats) &&
      options_.seek_compaction) {
    metrics_->Add(obs::kSeekCompactions);
    MaybeScheduleCompaction();
  }
  mem->Unref();
  if (imm != nullptr) imm->Unref();
  current->Unref();
  if (timed) {
    metrics_->RecordHist(obs::kGetLatencyNs, env_->NowNanos() - gstart);
  }
  return s;
}

std::vector<Status> DBImpl::MultiGet(const ReadOptions& options,
                                     const std::vector<Slice>& keys,
                                     std::vector<std::string>* values) {
  values->assign(keys.size(), std::string());
  std::vector<Status> statuses(keys.size());
  if (keys.empty()) {
    return statuses;
  }
  metrics_->Add(obs::kMultiGetCalls);
  metrics_->Add(obs::kMultiGetKeys, keys.size());
  metrics_->Add(obs::kNumKeysRead, keys.size());

  // One lock acquisition pins one snapshot + memtable/version set for
  // the whole batch; every lookup then runs unlocked against it.
  MutexLock l(&mutex_);
  if (simulated()) {
    sim_->AdvanceCpu(options_.sim_read_cpu_ns * keys.size());
  }
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot =
        static_cast<const SnapshotImpl*>(options.snapshot)->sequence_number();
  } else {
    snapshot = versions_->LastSequence();
  }

  MemTable* mem = mem_;
  MemTable* imm = imm_;
  Version* current = versions_->current();
  mem->Ref();
  if (imm != nullptr) imm->Ref();
  current->Ref();

  std::vector<Version::GetStats> stats(keys.size());
  std::vector<bool> have_stat_update(keys.size(), false);

  {
    mutex_.Unlock();
    if (options_.multiget_parallelism > 1) {
      // Batched path: keys the memtables cannot answer fall through to
      // one Version::MultiGet, whose cold SST block reads are issued as
      // Env::ReadBatch submissions instead of serial per-key I/O.  The
      // LookupKeys live in a deque (LookupKey is non-copyable and the
      // batch needs stable addresses until the round completes).
      std::deque<LookupKey> lkeys;
      std::vector<Version::MultiGetItem> items;
      std::vector<size_t> item_index;  // items[j] resolves keys[item_index[j]]
      items.reserve(keys.size());
      for (size_t i = 0; i < keys.size(); i++) {
        Status& s = statuses[i];
        std::string* value = &(*values)[i];
        lkeys.emplace_back(keys[i], snapshot);
        const LookupKey& lkey = lkeys.back();
        if (mem->Get(lkey, value, &s)) {
          obs::GetPerfContext()->get_from_memtable++;
        } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
          obs::GetPerfContext()->get_from_memtable++;
        } else {
          Version::MultiGetItem item;
          item.key = &lkey;
          item.value = value;
          items.push_back(item);
          item_index.push_back(i);
        }
      }
      if (!items.empty()) {
        current->MultiGet(options, items.data(), items.size());
        for (size_t j = 0; j < items.size(); j++) {
          const size_t i = item_index[j];
          statuses[i] = items[j].status;
          stats[i] = items[j].stats;
          have_stat_update[i] = true;
        }
      }
    } else {
      // Serial path (multiget_parallelism <= 1): per-key Version::Get.
      for (size_t i = 0; i < keys.size(); i++) {
        Status& s = statuses[i];
        std::string* value = &(*values)[i];
        LookupKey lkey(keys[i], snapshot);
        if (mem->Get(lkey, value, &s)) {
          obs::GetPerfContext()->get_from_memtable++;
        } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
          obs::GetPerfContext()->get_from_memtable++;
        } else {
          s = current->Get(options, lkey, value, &stats[i]);
          have_stat_update[i] = true;
        }
      }
    }
    mutex_.Lock();
  }

  bool schedule = false;
  for (size_t i = 0; i < keys.size(); i++) {
    if (have_stat_update[i] && current->UpdateStats(stats[i]) &&
        options_.seek_compaction) {
      metrics_->Add(obs::kSeekCompactions);
      schedule = true;
    }
  }
  if (schedule) {
    MaybeScheduleCompaction();
  }
  mem->Unref();
  if (imm != nullptr) imm->Unref();
  current->Unref();
  return statuses;
}

Status DBImpl::GetBackgroundError() {
  MutexLock l(&mutex_);
  return bg_error_.status();
}

namespace {

struct IterState {
  port::Mutex* const mu;
  Version* const version;
  MemTable* const mem;
  MemTable* const imm;

  IterState(port::Mutex* mutex, MemTable* mem, MemTable* imm,
            Version* version)
      : mu(mutex), version(version), mem(mem), imm(imm) {}
};

void CleanupIteratorState(void* arg1, void* arg2) {
  IterState* state = reinterpret_cast<IterState*>(arg1);
  state->mu->Lock();
  state->mem->Unref();
  if (state->imm != nullptr) state->imm->Unref();
  state->version->Unref();
  state->mu->Unlock();
  delete state;
}

}  // anonymous namespace

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot) {
  mutex_.Lock();
  *latest_snapshot = versions_->LastSequence();

  // Collect together all needed child iterators
  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  mem_->Ref();
  if (imm_ != nullptr) {
    list.push_back(imm_->NewIterator());
    imm_->Ref();
  }
  versions_->current()->AddIterators(options, &list);
  Iterator* internal_iter =
      NewMergingIterator(&internal_comparator_, list.data(),
                         static_cast<int>(list.size()));
  versions_->current()->Ref();

  IterState* cleanup =
      new IterState(&mutex_, mem_, imm_, versions_->current());
  internal_iter->RegisterCleanup(CleanupIteratorState, cleanup, nullptr);

  mutex_.Unlock();
  return internal_iter;
}

Iterator* DBImpl::TEST_NewInternalIterator() {
  SequenceNumber ignored;
  return NewInternalIterator(ReadOptions(), &ignored);
}

std::string DBImpl::TEST_CheckInvariants() {
  MutexLock l(&mutex_);
  return versions_->current()->CheckInvariants();
}

int DBImpl::TEST_NumTablesAtLevel(int level) {
  MutexLock l(&mutex_);
  return versions_->NumLevelTables(level);
}

int64_t DBImpl::TEST_BytesAtLevel(int level) {
  MutexLock l(&mutex_);
  return versions_->NumLevelBytes(level);
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  metrics_->Add(obs::kNumSeeks);
  SequenceNumber latest_snapshot;
  Iterator* iter = NewInternalIterator(options, &latest_snapshot);
  if (simulated()) {
    sim_->AdvanceCpu(options_.sim_read_cpu_ns);
  }
  return NewDBIterator(user_comparator(), iter,
                       (options.snapshot != nullptr
                            ? static_cast<const SnapshotImpl*>(options.snapshot)
                                  ->sequence_number()
                            : latest_snapshot));
}

const Snapshot* DBImpl::GetSnapshot() {
  MutexLock l(&mutex_);
  return snapshots_.New(versions_->LastSequence());
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  MutexLock l(&mutex_);
  snapshots_.Delete(static_cast<const SnapshotImpl*>(snapshot));
}

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();

  MutexLock l(&mutex_);
  Slice in = property;
  Slice prefix("bolt.");
  if (!in.starts_with(prefix)) return false;
  in.remove_prefix(prefix.size());

  if (in.starts_with("num-files-at-level")) {
    in.remove_prefix(strlen("num-files-at-level"));
    uint64_t level = 0;
    bool ok = !in.empty();
    for (size_t i = 0; i < in.size(); i++) {
      if (in[i] < '0' || in[i] > '9') {
        ok = false;
        break;
      }
      level = level * 10 + (in[i] - '0');
    }
    if (!ok || level >= static_cast<uint64_t>(options_.num_levels)) {
      return false;
    } else {
      char buf[100];
      snprintf(buf, sizeof(buf), "%d",
               versions_->NumLevelTables(static_cast<int>(level)));
      *value = buf;
      return true;
    }
  } else if (in == "stats") {
    char buf[400];
    snprintf(buf, sizeof(buf),
             "                               Compactions\n"
             "Level  Tables Size(MB)\n"
             "--------------------------\n");
    value->append(buf);
    for (int level = 0; level < options_.num_levels; level++) {
      int files = versions_->NumLevelTables(level);
      if (files > 0 || versions_->NumLevelBytes(level) > 0) {
        snprintf(buf, sizeof(buf), "%3d %8d %8.2f\n", level, files,
                 versions_->NumLevelBytes(level) / 1048576.0);
        value->append(buf);
      }
    }
    snprintf(buf, sizeof(buf),
             "flushes=%" PRIu64 " compactions=%" PRIu64
             " trivial_moves=%" PRIu64 " settled=%" PRIu64
             " stalls=%" PRIu64 " slowdowns=%" PRIu64 "\n",
             metrics_->Get(obs::kMemtableFlushes),
             metrics_->Get(obs::kCompactions),
             metrics_->Get(obs::kTrivialMoves),
             metrics_->Get(obs::kSettledPromotions),
             metrics_->Get(obs::kStallWrites),
             metrics_->Get(obs::kSlowdownWrites));
    value->append(buf);
    if (!bg_error_.ok()) {
      value->append("background_error: ");
      value->append(bg_error_.Describe());
      value->append("\n");
    } else if (!bg_error_.last_recovered().empty()) {
      value->append("last_recovered_error: ");
      value->append(bg_error_.last_recovered());
      value->append("\n");
    }
    value->append(metrics_->ToString());
    return true;
  } else if (in == "levels") {
    char buf[200];
    snprintf(buf, sizeof(buf), "level tables runs bytes\n");
    value->append(buf);
    for (int level = 0; level < options_.num_levels; level++) {
      snprintf(buf, sizeof(buf), "%5d %6d %4d %" PRId64 "\n", level,
               versions_->NumLevelTables(level),
               versions_->current()->NumLevelRuns(level),
               versions_->NumLevelBytes(level));
      value->append(buf);
    }
    return true;
  } else if (in == "metrics") {
    metrics_->SetGauge(obs::kReclamationBacklog, zombies_.size());
    // Cache occupancy is read from the underlying caches at report time:
    // with N shards sharing one cache, each reporter *sets* the same
    // shared TotalCharge instead of summing per-shard slices.
    if (options_.block_cache != nullptr) {
      metrics_->SetGauge(obs::kBlockCacheUsage,
                         options_.block_cache->TotalCharge());
    }
    metrics_->SetGauge(obs::kTableCacheUsage, table_cache_->TotalCharge());
    *value = metrics_->ToJson();
    return true;
  } else if (in == "sstables") {
    *value = versions_->current()->DebugString();
    return true;
  } else if (in == "trace.chrome") {
    if (tracer_ == nullptr) {
      return false;  // tracing not enabled
    }
    *value = tracer_->ChromeJson();
    return true;
  }

  return false;
}

Status DB::DumpTrace(const std::string& path) {
  (void)path;
  return Status::NotSupported("DumpTrace", "not supported by this DB");
}

Status DBImpl::DumpTrace(const std::string& path) {
  if (tracer_ == nullptr) {
    return Status::InvalidArgument(
        "DumpTrace", "tracing not enabled (set Options::enable_tracing)");
  }
  std::string json = "{\"traceEvents\": ";
  json += tracer_->ChromeEventsJson();
  json += ",\n\"otherData\": {\"metrics\": ";
  json += metrics_->ToJson();
  json += "}}\n";

  // The dump goes to the *host* filesystem even when the DB itself runs
  // on SimEnv: it is for humans and Perfetto, not for the engine.
  Env* host = PosixEnv();
  std::unique_ptr<WritableFile> file;
  Status s = host->NewWritableFile(path, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(json);
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  return s;
}

void DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  int max_level_with_files = 1;
  {
    MutexLock l(&mutex_);
    Version* base = versions_->current();
    for (int level = 1; level < options_.num_levels; level++) {
      if (base->OverlapInLevel(level, begin, end)) {
        max_level_with_files = level;
      }
    }
  }
  // CompactRange has no status to report through; a failed memtable
  // flush lands in bg_error_ and surfaces on the next write.
  (void)TEST_CompactMemTable();  // TODO(opt): skip if memtable does not
                                 // overlap
  for (int level = 0; level < max_level_with_files; level++) {
    TEST_CompactRange(level, begin, end);
  }
}

void DBImpl::WaitForBackgroundWork() {
  MutexLock l(&mutex_);
  if (simulated()) {
    MaybeScheduleCompaction();
    return;
  }
  while ((bg_flush_scheduled_ || bg_compactions_scheduled_ > 0 ||
          imm_ != nullptr) &&
         bg_error_.ok()) {
    background_work_finished_signal_.Wait();
  }
}

DbStats DBImpl::GetStats() {
  MutexLock l(&mutex_);
  metrics_->SetGauge(obs::kReclamationBacklog, zombies_.size());
  // DbStats is now a snapshot view over the registry.
  DbStats s;
  s.slowdown_writes = metrics_->Get(obs::kSlowdownWrites);
  s.stall_writes = metrics_->Get(obs::kStallWrites);
  s.stall_micros = metrics_->Get(obs::kStallMicros);
  s.memtable_flushes = metrics_->Get(obs::kMemtableFlushes);
  s.compactions = metrics_->Get(obs::kCompactions);
  s.trivial_moves = metrics_->Get(obs::kTrivialMoves);
  s.settled_promotions = metrics_->Get(obs::kSettledPromotions);
  s.pure_settled_compactions = metrics_->Get(obs::kPureSettledCompactions);
  s.seek_compactions = metrics_->Get(obs::kSeekCompactions);
  s.subcompactions = metrics_->Get(obs::kSubcompactions);
  s.parallel_compactions = metrics_->Get(obs::kParallelCompactions);
  s.compaction_bytes_read = metrics_->Get(obs::kCompactionBytesRead);
  s.compaction_bytes_written = metrics_->Get(obs::kCompactionBytesWritten);
  s.compaction_output_tables = metrics_->Get(obs::kCompactionOutputTables);
  s.compaction_files_created = metrics_->Get(obs::kCompactionFilesCreated);
  s.settled_bytes_saved = metrics_->Get(obs::kSettledBytesSaved);
  s.hole_punches = metrics_->Get(obs::kHolePunches);
  s.hole_punch_failures = metrics_->Get(obs::kHolePunchFailures);
  s.reclamation_backlog = zombies_.size();
  s.background_errors = metrics_->Get(obs::kBackgroundErrors);
  s.resumes = metrics_->Get(obs::kResumes);
  s.recovery_attempts = metrics_->Get(obs::kRecoveryAttempts);
  s.recovery_escalations = metrics_->Get(obs::kRecoveryEscalations);
  s.writes_rejected_readonly = metrics_->Get(obs::kWritesRejectedReadOnly);
  return s;
}

Status DBImpl::Resume() {
  MutexLock l(&mutex_);
  // If the RecoveryManager is mid-retry, let it finish first: it may
  // heal the error for us, and racing two Resume paths over the same
  // WAL/memtable swap would be unsound.
  while (recovery_scheduled_ && !simulated() &&
         !shutting_down_.load(std::memory_order_acquire)) {
    background_work_finished_signal_.Wait();
  }
  if (bg_error_.ok()) {
    return Status::OK();  // nothing to recover from
  }
  if (bg_error_.status().IsCorruption() ||
      bg_error_.severity() == ErrorSeverity::kFatal) {
    // On-disk state is suspect; a live handle cannot repair that.
    return bg_error_.status();
  }
  obs::RecoveryInfo rinfo;
  rinfo.attempt = ++recovery_attempt_;
  for (const auto& listener : options_.listeners) {
    listener->OnErrorRecoveryBegin(rinfo);
  }
  Status s = ResumeInternal(/*auto_recovery=*/false);
  rinfo.status = s;
  for (const auto& listener : options_.listeners) {
    listener->OnErrorRecoveryEnd(rinfo);
  }
  return s;
}

Status DBImpl::ResumeInternal(bool auto_recovery) {
  // REQUIRES: bg_error_ latched with a non-fatal error.
  obs::SpanScope span(tracer_, "resume");
  span.SetStrArg("mode", auto_recovery ? "auto" : "manual");
  BOLT_SYNC_POINT("DBImpl::ResumeInternal:Start");
  // Drain any background job that was already running when the error
  // latched (it will see bg_error_ and bail without side effects), and
  // any in-flight write group (a leader may be appending to the WAL
  // with mutex_ released; we are about to swap the log under it).  New
  // writers fail fast on the latch, so the queue empties.
  while (!simulated() &&
         (!writers_.empty() || bg_flush_scheduled_ ||
          bg_compactions_scheduled_ > 0)) {
    background_work_finished_signal_.Wait();
  }

  // The WAL tail is indeterminate, so the memtables are the only
  // complete copy of recently acked writes.  Make them durable through
  // the MANIFEST instead of trusting the log: flush imm_ then mem_ into
  // one edit, rotate to a fresh WAL, and commit a fresh descriptor
  // (LogAndApply writes a full-snapshot MANIFEST + CURRENT swap after a
  // descriptor failure).  Nothing is unreferenced or swapped until the
  // commit succeeds, and bg_error_ stays latched throughout so
  // concurrent writers cannot mutate mem_ under us.
  VersionEdit edit;
  Status s;
  int flushed = 0;
  if (imm_ != nullptr) {
    s = WriteLevel0Table(imm_, &edit);
    if (!s.ok()) {
      return s;
    }
    flushed++;
  }
  if (mem_->num_entries() > 0) {
    s = WriteLevel0Table(mem_, &edit);
    if (!s.ok()) {
      return s;
    }
    flushed++;
  }

  const uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
  if (!s.ok()) {
    versions_->ReuseFileNumber(new_log_number);
    return s;
  }
  edit.SetPrevLogNumber(0);
  edit.SetLogNumber(new_log_number);  // older (possibly torn) logs dropped
  s = versions_->LogAndApply(&edit);
  if (!s.ok()) {
    lfile.reset();
    (void)env_->RemoveFile(
        LogFileName(dbname_, new_log_number));  // best-effort cleanup
    return s;  // still degraded; the caller may retry
  }

  // Committed: install the fresh WAL + memtable and clear the latch.
  delete log_;
  delete logfile_;
  logfile_ = lfile.release();
  logfile_number_ = new_log_number;
  log_ = new log::Writer(logfile_);
  if (imm_ != nullptr) {
    imm_->Unref();
    imm_ = nullptr;
    has_imm_.store(false, std::memory_order_release);
  }
  mem_->Unref();
  mem_ = new MemTable(internal_comparator_);
  mem_->Ref();
  if (simulated() && flushed > 0) {
    AddL0Event(sim_->Now(), flushed);
    imm_done_time_ = sim_->Now();
  }

  if (options_.verify_integrity_on_resume) {
    // Scrub every live table + the MANIFEST before re-admitting writes.
    Status vs = VerifyIntegrityLocked();
    if (!vs.ok()) {
      if (vs.IsCorruption()) {
        // Escalate: the latch replaces the retryable error with fatal.
        RecordBackgroundError(vs, bg_error_.context().operation);
      }
      return vs;  // still degraded
    }
  }

  // Committed and verified: clear the latch and re-admit writes.
  Log(options_.info_log, "Recovered from background error (%s): %s",
      auto_recovery ? "auto" : "manual", bg_error_.Describe().c_str());
  bg_error_.Clear();
  metrics_->SetGauge(obs::kErrorCurrentSeverity, 0);
  recovery_attempt_ = 0;
  if (simulated()) {
    // A manual Resume() may heal before the write path ran the pending
    // inline recovery; drop the flag so a future error can re-arm it.
    recovery_scheduled_ = false;
  }
  metrics_->Add(obs::kResumes);
  for (const auto& listener : options_.listeners) {
    listener->OnResume();
  }
  BOLT_SYNC_POINT("DBImpl::ResumeInternal:Done");
  RemoveObsoleteFiles();
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
  return Status::OK();
}

Status DB::VerifyIntegrity() {
  return Status::NotSupported("VerifyIntegrity",
                              "not supported by this DB");
}

Status DB::GetBackgroundError() { return Status::OK(); }

std::vector<Status> DB::MultiGet(const ReadOptions& options,
                                 const std::vector<Slice>& keys,
                                 std::vector<std::string>* values) {
  // Fallback for DBs without a batched read path: N independent Gets.
  values->assign(keys.size(), std::string());
  std::vector<Status> statuses;
  statuses.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    statuses.push_back(Get(options, keys[i], &(*values)[i]));
  }
  return statuses;
}

Status DBImpl::VerifyIntegrity() {
  MutexLock l(&mutex_);
  return VerifyIntegrityLocked();
}

Status DBImpl::VerifyIntegrityLocked() {
  // Releases mutex_ during the scan.  Reads every live
  // logical SSTable with checksum verification through the normal
  // iterator machinery, then re-reads the current MANIFEST through a
  // checksumming log reader.  Runs against a referenced Version, so
  // writes/compactions proceed while the scrub reads (they cannot
  // while a recovery holds the error latch, which is the intended use).
  metrics_->Add(obs::kIntegrityScrubs);
  obs::SpanScope span(tracer_, "integrity_scrub");
  BOLT_SYNC_POINT("DBImpl::VerifyIntegrity:Start");
  Version* current = versions_->current();
  current->Ref();
  uint64_t tables = 0;
  for (int level = 0; level < options_.num_levels; level++) {
    tables += versions_->NumLevelTables(level);
  }
  ReadOptions ro;
  ro.verify_checksums = true;
  ro.fill_cache = false;
  std::vector<Iterator*> iters;
  current->AddIterators(ro, &iters);

  mutex_.Unlock();
  Status s;
  for (Iterator* it : iters) {
    if (s.ok()) {
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
      }
      s = it->status();
    }
    delete it;
  }

  if (s.ok()) {
    // Re-read the MANIFEST named by CURRENT (the durable descriptor —
    // after a failed commit, manifest_file_number_ already points at the
    // next incarnation) through a checksumming reader.
    std::string current_contents;
    s = ReadFileToString(env_, CurrentFileName(dbname_), &current_contents);
    if (s.ok() &&
        (current_contents.empty() || current_contents.back() != '\n')) {
      s = Status::Corruption("CURRENT file malformed", dbname_);
    }
    if (s.ok()) {
      current_contents.resize(current_contents.size() - 1);
      const std::string manifest = dbname_ + "/" + current_contents;
      std::unique_ptr<SequentialFile> mf;
      s = env_->NewSequentialFile(manifest, &mf);
      if (s.ok()) {
        struct Reporter : public log::Reader::Reporter {
          Status status;
          void Corruption(size_t, const Status& cs) override {
            if (status.ok()) status = cs;
          }
        };
        Reporter reporter;
        log::Reader reader(mf.get(), &reporter, true /*checksum*/);
        std::string scratch;
        Slice record;
        while (reader.ReadRecord(&record, &scratch)) {
        }
        s = reporter.status;
      }
    }
  }
  mutex_.Lock();

  current->Unref();
  if (s.ok()) {
    metrics_->Add(obs::kIntegrityTablesVerified, tables);
  } else {
    metrics_->Add(obs::kIntegrityErrors);
    Log(options_.info_log, "Integrity scrub failed: %s",
        s.ToString().c_str());
  }
  span.AddArg("tables", tables);
  span.SetStrArg("result", s.ok() ? "clean" : "damaged");
  return s;
}

DB::~DB() = default;

Snapshot::~Snapshot() = default;

Status DB::Open(const Options& options, const std::string& dbname,
                DB** dbptr) {
  *dbptr = nullptr;

  DBImpl* impl = new DBImpl(options, dbname);
  impl->mutex_.Lock();
  VersionEdit edit;
  Status s = impl->Recover(&edit);
  if (s.ok() && impl->mem_ == nullptr) {
    // Create new log and a corresponding memtable.
    uint64_t new_log_number = impl->versions_->NewFileNumber();
    std::unique_ptr<WritableFile> lfile;
    s = options.env->NewWritableFile(LogFileName(dbname, new_log_number),
                                     &lfile);
    if (s.ok()) {
      edit.SetLogNumber(new_log_number);
      impl->logfile_ = lfile.release();
      impl->logfile_number_ = new_log_number;
      impl->log_ = new log::Writer(impl->logfile_);
      impl->mem_ = new MemTable(impl->internal_comparator_);
      impl->mem_->Ref();
    }
  }
  if (s.ok()) {
    edit.SetPrevLogNumber(0);  // No older logs needed after recovery.
    s = impl->versions_->LogAndApply(&edit);
  }
  if (s.ok()) {
    if (impl->simulated()) {
      // Seed the virtual governor state with the recovered L0 count.
      impl->vl0_runs_ = impl->versions_->current()->NumLevelRuns(0);
    }
    impl->RemoveObsoleteFiles();
    impl->MaybeScheduleCompaction();
  }
  impl->mutex_.Unlock();
  if (s.ok()) {
    assert(impl->mem_ != nullptr);
    Log(impl->options_.info_log,
        "Opened %s (mode=%s, tracing=%s, stats_dump_period_sec=%u)",
        dbname.c_str(),
        impl->options_.bolt_logical_sstables ? "bolt" : "stock",
        impl->tracer_ != nullptr ? "on" : "off",
        impl->options_.stats_dump_period_sec);
    *dbptr = impl;
  } else {
    delete impl;
  }
  return s;
}

Status DestroyDB(const std::string& dbname, const Options& options) {
  Env* env = options.env;
  std::vector<std::string> filenames;
  Status result = env->GetChildren(dbname, &filenames);
  if (!result.ok()) {
    // Ignore error in case directory does not exist
    return Status::OK();
  }

  uint64_t number;
  FileType type;
  for (const std::string& fname : filenames) {
    if (ParseFileName(fname, &number, &type)) {
      Status del = env->RemoveFile(dbname + "/" + fname);
      if (result.ok() && !del.ok()) {
        result = del;
      }
    }
  }
  // Ignore error in case dir contains other files.
  (void)env->RemoveDir(dbname);
  return result;
}

}  // namespace bolt
