// Error-severity model for background failures (DESIGN.md §11).
//
// Every background failure — WAL append/sync, memtable flush, compaction,
// MANIFEST commit, value reclamation — is classified *at its origin* into
// a severity that decides what happens next:
//
//   kTransient  retried automatically by the RecoveryManager; writers
//               keep queueing (they observe the latched error only if
//               they arrive mid-window).
//   kSoftError  durability state is consistent but the failed job's
//               output is lost; auto-recovery re-runs the Resume() path
//               (flush memtables, rotate WAL, re-commit MANIFEST).
//   kHardError  auto-recovery exhausted or the failure isn't retryable;
//               the DB enters degraded read-only mode until a manual
//               DB::Resume() succeeds.
//   kFatal      on-disk state can no longer be trusted (Corruption);
//               writes stay rejected and Resume() refuses to clear it.
//
// The severity travels with a BgErrorContext describing *where* the
// failure happened (operation, file type, file name), which is what the
// LOG line, bolt.stats and the OnBackgroundError listener surface —
// previously only the Status text survived.
#pragma once

#include <string>

#include "db/filename.h"
#include "util/status.h"

namespace bolt {

enum class ErrorSeverity {
  kNone = 0,
  kTransient,
  kSoftError,
  kHardError,
  kFatal,
};

// The background operation that produced the error.
enum class ErrorOperation {
  kUnknown = 0,
  kWalAppend,
  kWalSync,
  kFlush,
  kCompaction,
  kManifestCommit,
  kReclaim,
};

const char* ErrorSeverityName(ErrorSeverity sev);
const char* ErrorOperationName(ErrorOperation op);

struct BgErrorContext {
  ErrorOperation operation = ErrorOperation::kUnknown;
  bool has_file_type = false;  // false: failure wasn't tied to one file
  FileType file_type = kLogFile;
  std::string file_name;
};

// Map (status, origin) to a severity.  Corruption anywhere is fatal.
// I/O errors on the WAL are transient (the write path retries cheaply:
// rotate the log, re-commit); I/O errors in flush/compaction/MANIFEST
// commit are soft (job output lost, state consistent).  Anything else —
// NotSupported, InvalidArgument, unclassified codes — is hard.
ErrorSeverity ClassifyBgError(const Status& s, ErrorOperation op);

// The latched background-error state: what used to be a bare
// `Status bg_error_`.  Owned by DBImpl, guarded by the DB mutex.
class ErrorState {
 public:
  bool ok() const { return severity_ == ErrorSeverity::kNone; }
  const Status& status() const { return status_; }
  ErrorSeverity severity() const { return severity_; }
  const BgErrorContext& context() const { return context_; }

  // Latch (status, ctx).  First error wins, with one exception: a later
  // error of strictly higher severity replaces the latched one (so a
  // Corruption discovered while retrying a transient fault is not
  // masked).  Returns true if this call changed the state.
  bool Set(const Status& s, const BgErrorContext& ctx);

  // Escalate the current error to kHardError (auto-recovery exhausted).
  void Escalate();

  // Clear after a successful recovery, remembering what was recovered
  // from for the stats report.
  void Clear();

  // "op=<op> file=<type>:<name> severity=<sev>: <status>" — the LOG /
  // bolt.stats rendering of the current (or last cleared) error.
  std::string Describe() const;

  // Last error this state recovered from (empty string if none).
  const std::string& last_recovered() const { return last_recovered_; }

 private:
  Status status_;
  ErrorSeverity severity_ = ErrorSeverity::kNone;
  BgErrorContext context_;
  std::string last_recovered_;
};

}  // namespace bolt
