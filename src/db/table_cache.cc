#include "db/table_cache.h"

#include "db/filename.h"
#include "env/env.h"
#include "obs/metrics.h"
#include "obs/perf_context.h"
#include "sim/sim_context.h"
#include "table/iterator.h"
#include "table/table.h"
#include "util/coding.h"
#include "util/mutexlock.h"

namespace bolt {

namespace {

struct TableAndFile {
  Table* table = nullptr;
  // Exactly one of these owns the file:
  RandomAccessFile* owned_file = nullptr;  // owned directly (no fd cache)
  Cache* fd_cache = nullptr;               // cache holding the shared fd
  Cache::Handle* fd_handle = nullptr;
};

void DeleteEntry(const Slice& key, void* value) {
  TableAndFile* tf = reinterpret_cast<TableAndFile*>(value);
  delete tf->table;
  if (tf->fd_handle != nullptr) {
    tf->fd_cache->Release(tf->fd_handle);
  } else {
    delete tf->owned_file;
  }
  delete tf;
}

void DeleteFd(const Slice& key, void* value) {
  delete reinterpret_cast<RandomAccessFile*>(value);
}

void UnrefEntry(void* arg1, void* arg2) {
  Cache* cache = reinterpret_cast<Cache*>(arg1);
  Cache::Handle* h = reinterpret_cast<Cache::Handle*>(arg2);
  cache->Release(h);
}

std::string PhysicalFileName(const std::string& dbname, const TableMeta& meta) {
  return meta.file_type == kCompactionFile
             ? CompactionFileName(dbname, meta.file_number)
             : TableFileName(dbname, meta.file_number);
}

}  // namespace

TableCache::TableCache(const std::string& dbname, const Options& options,
                       int entries)
    : env_(options.env),
      dbname_(dbname),
      options_(options),
      owned_cache_(options.table_cache != nullptr ? nullptr
                                                  : NewLRUCache(entries)),
      cache_(options.table_cache != nullptr ? options.table_cache
                                            : owned_cache_.get()),
      cache_id_(cache_->NewId()) {
  if (options_.fd_cache) {
    fd_cache_.reset(NewLRUCache(entries));
  }
}

TableCache::~TableCache() {
  if (owned_cache_ == nullptr) {
    // Shared cache: purge this DB's entries now.  Their deleters release
    // handles into our private fd cache, which dies with us; an eviction
    // after this destructor would touch freed memory.
    std::set<uint64_t> ids;
    {
      MutexLock l(&ids_mu_);
      ids.swap(shared_ids_);
    }
    for (uint64_t table_id : ids) {
      char buf[16];
      EncodeFixed64(buf, cache_id_);
      EncodeFixed64(buf + 8, table_id);
      cache_->Erase(Slice(buf, sizeof(buf)));
    }
  }
}

Status TableCache::OpenTableFile(const TableMeta& meta, RandomAccessFile** file,
                                 Cache::Handle** fd_handle) {
  *file = nullptr;
  *fd_handle = nullptr;
  const std::string fname = PhysicalFileName(dbname_, meta);

  if (fd_cache_ != nullptr) {
    char buf[9];
    EncodeFixed64(buf, meta.file_number);
    buf[8] = static_cast<char>(meta.file_type);
    Slice key(buf, sizeof(buf));
    Cache::Handle* handle = fd_cache_->Lookup(key);
    if (handle == nullptr) {
      std::unique_ptr<RandomAccessFile> f;
      Status s = env_->NewRandomAccessFile(fname, &f);
      if (!s.ok()) return s;
      handle = fd_cache_->Insert(key, f.release(), 1, &DeleteFd);
    }
    *file = reinterpret_cast<RandomAccessFile*>(fd_cache_->Value(handle));
    *fd_handle = handle;
    return Status::OK();
  }

  std::unique_ptr<RandomAccessFile> f;
  Status s = env_->NewRandomAccessFile(fname, &f);
  if (!s.ok()) return s;
  *file = f.release();
  return Status::OK();
}

Status TableCache::FindTable(const TableMeta& meta, Cache::Handle** handle) {
  obs::MetricsRegistry* metrics = options_.metrics;
  obs::PerfContext* pc = obs::GetPerfContext();
  char buf[16];
  EncodeFixed64(buf, cache_id_);
  EncodeFixed64(buf + 8, meta.table_id);
  Slice key(buf, sizeof(buf));
  *handle = cache_->Lookup(key);
  if (*handle != nullptr) {
    if (metrics != nullptr) metrics->Add(obs::kTableCacheHits);
    pc->table_cache_hits++;
    return Status::OK();
  }
  if (metrics != nullptr) metrics->Add(obs::kTableCacheMisses);
  pc->table_cache_misses++;

  RandomAccessFile* file = nullptr;
  Cache::Handle* fd_handle = nullptr;
  Status s = OpenTableFile(meta, &file, &fd_handle);
  if (!s.ok()) return s;

  Table* table = nullptr;
  s = Table::Open(options_, file, meta.offset, meta.size, &table);
  if (!s.ok()) {
    assert(table == nullptr);
    if (fd_handle != nullptr) {
      fd_cache_->Release(fd_handle);
      // Drop the shared fd too: the failure may be tied to this handle
      // (stale descriptor after an injected I/O error), and a retry
      // should reopen the file from scratch.
      EvictFile(meta.file_number, meta.file_type);
    } else {
      delete file;
    }
    // We do not cache error results so that if the error is transient,
    // or somebody repairs the file, we recover automatically.
    return s;
  }

  TableAndFile* tf = new TableAndFile;
  tf->table = table;
  if (fd_handle != nullptr) {
    tf->fd_cache = fd_cache_.get();
    tf->fd_handle = fd_handle;
  } else {
    tf->owned_file = file;
  }
  if (owned_cache_ == nullptr) {
    MutexLock l(&ids_mu_);
    shared_ids_.insert(meta.table_id);
  }
  *handle = cache_->Insert(key, tf, 1, &DeleteEntry);
  return s;
}

Iterator* TableCache::NewIterator(const ReadOptions& options,
                                  const TableMeta& meta, Table** tableptr) {
  if (tableptr != nullptr) {
    *tableptr = nullptr;
  }

  Cache::Handle* handle = nullptr;
  Status s = FindTable(meta, &handle);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Table* table = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
  Iterator* result = table->NewIterator(options);
  result->RegisterCleanup(&UnrefEntry, cache_, handle);
  if (tableptr != nullptr) {
    *tableptr = table;
  }
  return result;
}

Status TableCache::Get(const ReadOptions& options, const TableMeta& meta,
                       const Slice& k, void* arg,
                       void (*handle_result)(void*, const Slice&,
                                             const Slice&)) {
  if (SimContext* sim = env_->sim()) {
    sim->AdvanceCpu(options_.sim_table_probe_cpu_ns);
  }
  obs::GetPerfContext()->tables_consulted++;
  Cache::Handle* handle = nullptr;
  Status s = FindTable(meta, &handle);
  if (s.ok()) {
    Table* t = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
    s = t->InternalGet(options, k, arg, handle_result);
    cache_->Release(handle);
  }
  return s;
}

Status TableCache::PinTable(const TableMeta& meta, Table** table,
                            Cache::Handle** pin) {
  *table = nullptr;
  *pin = nullptr;
  if (SimContext* sim = env_->sim()) {
    sim->AdvanceCpu(options_.sim_table_probe_cpu_ns);
  }
  obs::GetPerfContext()->tables_consulted++;
  Cache::Handle* handle = nullptr;
  Status s = FindTable(meta, &handle);
  if (s.ok()) {
    *table = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
    *pin = handle;
  }
  return s;
}

void TableCache::ReleasePin(Cache::Handle* pin) { cache_->Release(pin); }

void TableCache::Evict(uint64_t table_id) {
  char buf[16];
  EncodeFixed64(buf, cache_id_);
  EncodeFixed64(buf + 8, table_id);
  cache_->Erase(Slice(buf, sizeof(buf)));
  if (owned_cache_ == nullptr) {
    MutexLock l(&ids_mu_);
    shared_ids_.erase(table_id);
  }
}

void TableCache::EvictFile(uint64_t file_number, FileType type) {
  if (fd_cache_ != nullptr) {
    char buf[9];
    EncodeFixed64(buf, file_number);
    buf[8] = static_cast<char>(type);
    fd_cache_->Erase(Slice(buf, sizeof(buf)));
  }
}

}  // namespace bolt
