// Version / VersionSet: the metadata backbone of the LSM-tree.
//
// A Version is an immutable snapshot of the table tree: per level, the
// set of (logical) SSTables.  A VersionSet owns the chain of live
// Versions, the MANIFEST log (the commit mark of §2.4), and compaction
// picking — including the paper's group compaction (+GC, multiple
// victims per compaction), settled compaction (+STL, zero-overlap
// victims promoted by a metadata-only edit), and the PebblesDB-style
// FLSM mode used as the state-of-the-art baseline.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "db/dbformat.h"
#include "db/version_edit.h"

namespace bolt {

namespace log {
class Writer;
}

class Compaction;
class Iterator;
class MemTable;
class TableCache;
class Version;
class VersionSet;
class WritableFile;

// Return the smallest index i such that files[i]->largest >= key.
// Return files.size() if there is no such file.
// REQUIRES: "files" contains a sorted list of non-overlapping files.
int FindTable(const InternalKeyComparator& icmp,
              const std::vector<TableMeta*>& files, const Slice& key);

// Returns true iff some file in "files" overlaps the user key range
// [*smallest,*largest].  smallest==nullptr represents a key smaller than
// all keys in the DB.  largest==nullptr represents a key largest than
// all keys in the DB.  If disjoint_sorted_files, files[] contains
// disjoint sorted ranges.
bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<TableMeta*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key);

class Version {
 public:
  struct GetStats {
    TableMeta* seek_file;
    int seek_file_level;
  };

  // Append to *iters a sequence of iterators that will yield the
  // contents of this Version when merged together.
  void AddIterators(const ReadOptions&, std::vector<Iterator*>* iters);

  // Lookup the value for key.  If found, store it in *val and return OK.
  // Fills *stats with the first table consulted that did not contain the
  // key (seek-compaction bookkeeping).
  Status Get(const ReadOptions&, const LookupKey& key, std::string* val,
             GetStats* stats);

  // One batched lookup item: key/value in, status + seek stats out.
  struct MultiGetItem {
    const LookupKey* key = nullptr;
    std::string* value = nullptr;
    Status status;
    GetStats stats{nullptr, -1};
  };
  // Batched Get (DESIGN.md §14): resolves every item with the exact
  // candidate-table order, snapshot semantics, and seek-compaction
  // accounting of per-key Get(), but gathers the cold SST block reads
  // of each round — across all keys and levels — into one
  // Env::ReadBatch submission (parallelism and backend selection from
  // Options::multiget_parallelism / io_uring_enabled).
  void MultiGet(const ReadOptions&, MultiGetItem* items, size_t n);

  // Adds "stats" into the current state.  Returns true if a new
  // compaction may need to be triggered.
  bool UpdateStats(const GetStats& stats);

  // Reference count management (so Versions do not disappear out from
  // under live iterators).
  void Ref();
  void Unref();

  void GetOverlappingInputs(int level,
                            const InternalKey* begin,  // nullptr: before all
                            const InternalKey* end,    // nullptr: after all
                            std::vector<TableMeta*>* inputs);

  // Returns true iff some file in the specified level overlaps some part
  // of [*smallest_user_key,*largest_user_key].
  bool OverlapInLevel(int level, const Slice* smallest_user_key,
                      const Slice* largest_user_key);

  int NumTables(int level) const {
    return static_cast<int>(files_[level].size());
  }
  // Number of distinct physical files in a level: what the L0 governors
  // count.  With BoLT one flush produces one compaction file holding
  // many logical tables; the governor must see one run, not 64.
  int NumLevelRuns(int level) const;

  int64_t LevelBytes(int level) const;

  std::string DebugString() const;

  // Checks the structural invariants (ordering, disjointness where
  // required); used by tests.  Returns an empty string if consistent.
  std::string CheckInvariants() const;

 private:
  friend class Compaction;
  friend class VersionSet;

  class LevelTableNumIterator;

  explicit Version(VersionSet* vset);
  ~Version();

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  Iterator* NewConcatenatingIterator(const ReadOptions&, int level) const;

  // Whether tables within this level may overlap each other (true for
  // L0 always, and for every level in FLSM mode).
  bool LevelMayOverlap(int level) const;

  // Call func(arg, level, f) for every file that may contain user_key,
  // newest to oldest.  Stops when func returns false.
  void ForEachOverlapping(Slice user_key, Slice internal_key, void* arg,
                          bool (*func)(void*, int, TableMeta*));

  VersionSet* vset_;  // VersionSet to which this Version belongs
  Version* next_;     // Next version in linked list
  Version* prev_;     // Previous version in linked list
  int refs_;          // Number of live refs to this version

  // List of tables per level.  Levels that may overlap are sorted by
  // (smallest, table_id); disjoint levels are sorted by smallest.
  std::vector<std::vector<TableMeta*>> files_;

  // Next table to compact based on seek stats.
  TableMeta* file_to_compact_;
  int file_to_compact_level_;

  // Level that should be compacted next and its compaction score.
  // Score < 1 means compaction is not strictly needed.
  double compaction_score_;
  int compaction_level_;
  // Every level whose score >= 1, best first.  PickCompaction walks
  // this when given an exclusion set, so a second background job can
  // compact a lower-scoring level while the best one is in flight.
  std::vector<std::pair<double, int>> compaction_candidates_;
};

class VersionSet {
 public:
  VersionSet(const std::string& dbname, const Options* options,
             TableCache* table_cache, const InternalKeyComparator*);

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  ~VersionSet();

  // Apply *edit to the current version to form a new descriptor that is
  // both saved to persistent state (MANIFEST append + sync: the second
  // barrier of every compaction) and installed as the new current
  // version.
  Status LogAndApply(VersionEdit* edit);

  // Recover the last saved descriptor from persistent storage.
  Status Recover();

  Version* current() const { return current_; }

  uint64_t manifest_file_number() const { return manifest_file_number_; }

  // Allocate and return a new file number / table id (shared space).
  uint64_t NewFileNumber() { return next_file_number_++; }

  // Arrange to reuse "file_number" unless a newer file number has
  // already been allocated.
  void ReuseFileNumber(uint64_t file_number) {
    if (next_file_number_ == file_number + 1) {
      next_file_number_ = file_number;
    }
  }

  int NumLevelTables(int level) const { return current_->NumTables(level); }
  int64_t NumLevelBytes(int level) const {
    return current_->LevelBytes(level);
  }

  uint64_t LastSequence() const { return last_sequence_; }
  void SetLastSequence(uint64_t s) {
    assert(s >= last_sequence_);
    last_sequence_ = s;
  }

  void MarkFileNumberUsed(uint64_t number);

  uint64_t LogNumber() const { return log_number_; }
  uint64_t PrevLogNumber() const { return prev_log_number_; }

  // Pick level and inputs for a new compaction.  Returns nullptr if
  // there is no compaction to be done; otherwise a heap-allocated
  // Compaction describing it.  When exclude_tables is non-empty, any
  // candidate touching one of those table ids (an in-flight
  // compaction's inputs) is skipped and the next deserving level is
  // tried, so disjoint compactions can run concurrently.
  Compaction* PickCompaction(const std::set<uint64_t>* exclude_tables = nullptr);

  // Compaction for the whole range [begin, end] in the given level
  // (manual compaction / CompactRange).
  Compaction* CompactRange(int level, const InternalKey* begin,
                           const InternalKey* end);

  // Maximum total overlapping bytes at the next level for any single
  // table at the given level (diagnostics).
  int64_t MaxNextLevelOverlappingBytes();

  // Create an iterator that reads over the compaction inputs for "*c".
  Iterator* MakeInputIterator(Compaction* c);

  // Returns true iff some level needs a compaction.
  bool NeedsCompaction() const {
    Version* v = current_;
    return (v->compaction_score_ >= 1) || (v->file_to_compact_ != nullptr);
  }

  // Add all tables listed in any live version to *live.
  void AddLiveTables(std::set<uint64_t>* live_table_ids,
                     std::set<std::pair<uint64_t, int>>* live_files);

  // The target size of tables written at the given output level.
  uint64_t MaxTableSizeForLevel(int level) const;

  uint64_t MaxBytesForLevel(int level) const;

  const Options* options() const { return options_; }
  const InternalKeyComparator* icmp() const { return &icmp_; }
  TableCache* table_cache() const { return table_cache_; }

  struct LevelSummaryStorage {
    char buffer[200];
  };
  const char* LevelSummary(LevelSummaryStorage* scratch) const;

 private:
  class Builder;

  friend class Compaction;
  friend class Version;

  void Finalize(Version* v);

  void GetRange(const std::vector<TableMeta*>& inputs, InternalKey* smallest,
                InternalKey* largest);

  void GetRange2(const std::vector<TableMeta*>& inputs1,
                 const std::vector<TableMeta*>& inputs2, InternalKey* smallest,
                 InternalKey* largest);

  void SetupOtherInputs(Compaction* c);

  // Build a size-triggered compaction at the given level, or nullptr if
  // the level is empty or the result touches exclude_tables.
  Compaction* PickCompactionAtLevel(int level,
                                    const std::set<uint64_t>* exclude_tables);

  // Pick the victim tables in "level" (the paper's group / settled /
  // min-overlap policies live here).
  // Choose the level-N victim tables for a size-triggered compaction.
  // Tables in exclude_tables (or, for the settled policy, victims whose
  // next-level overlaps touch it) are skipped so a concurrent pick
  // lands on work disjoint from in-flight compactions.
  void PickVictims(Version* v, int level,
                   const std::set<uint64_t>* exclude_tables,
                   std::vector<TableMeta*>* victims);

  // Save current contents to *log.
  Status WriteSnapshot(log::Writer* log);

  void AppendVersion(Version* v);

  Env* const env_;
  const std::string dbname_;
  const Options* const options_;
  TableCache* const table_cache_;
  const InternalKeyComparator icmp_;
  uint64_t next_file_number_;
  uint64_t manifest_file_number_;
  uint64_t last_sequence_;
  uint64_t log_number_;
  uint64_t prev_log_number_;  // 0 or backing store for memtable being compacted

  // Opened lazily
  WritableFile* descriptor_file_;
  log::Writer* descriptor_log_;
  Version dummy_versions_;  // Head of circular doubly-linked list of versions.
  Version* current_;        // == dummy_versions_.prev_

  // Per-level key at which the next compaction at that level should start.
  // Either an empty string, or a valid InternalKey.
  std::vector<std::string> compact_pointer_;
};

// A Compaction encapsulates information about a compaction.
class Compaction {
 public:
  ~Compaction();

  // Return the level that is being compacted.  Inputs from "level"
  // and "level+1" will be merged to produce a set of "level+1" tables.
  int level() const { return level_; }

  // Return the object that holds the edits to the descriptor done
  // by this compaction.
  VersionEdit* edit() { return &edit_; }

  // "which" must be either 0 or 1
  int num_input_files(int which) const {
    return static_cast<int>(inputs_[which].size());
  }

  // Return the ith input file at "level()+which" ("which" must be 0 or 1).
  TableMeta* input(int which, int i) const { return inputs_[which][i]; }

  // Victims with no next-level overlap, promoted by a MANIFEST-only
  // edit (settled compaction, §3.4).  Disjoint from inputs_[0].
  const std::vector<TableMeta*>& promoted() const { return promoted_; }

  // Target size of tables produced by this compaction.
  uint64_t MaxOutputTableBytes() const { return max_output_table_bytes_; }

  // Is this a trivial compaction that can be implemented by just
  // moving a single input file to the next level (no merging or
  // splitting)?
  bool IsTrivialMove() const;

  // Add all inputs (and promoted victims) to this compaction as
  // delete operations to *edit.
  void AddInputDeletions(VersionEdit* edit);

  // Per-consumer iteration state for the key-walk queries below.  The
  // cursors only ever advance, so they cannot be shared between
  // consumers walking different key ranges: each subcompaction shard
  // owns one IterState while the legacy single-threaded path uses the
  // compaction's built-in default state.
  struct IterState {
    std::vector<size_t> level_ptrs;  // per-level sorted-walk cursors
    size_t grandparent_index = 0;
    bool seen_key = false;
    int64_t overlapped_bytes = 0;
    size_t stop_key_index = 0;
  };
  // A fresh state positioned before the compaction's key range.
  IterState NewIterState() const;

  // Returns true if the information we have available guarantees that
  // the compaction is producing data in "level+1" for which no data
  // exists in levels greater than "level+1".
  // REQUIRES: successive user_keys per state are non-decreasing.
  bool IsBaseLevelForKey(const Slice& user_key, IterState* state);
  bool IsBaseLevelForKey(const Slice& user_key) {
    return IsBaseLevelForKey(user_key, &default_iter_state_);
  }

  // Returns true iff we should stop building the current output table
  // before processing "internal_key": at grandparent-overlap boundaries
  // (LevelDB) and at promoted-victim boundaries (so settled tables never
  // end up overlapped by a merge output).
  // REQUIRES: successive internal_keys per state are non-decreasing.
  bool ShouldStopBefore(const Slice& internal_key, IterState* state);
  bool ShouldStopBefore(const Slice& internal_key) {
    return ShouldStopBefore(internal_key, &default_iter_state_);
  }

  // Release the input version for the compaction, once the compaction
  // is successful.
  void ReleaseInputs();

  // Total bytes across inputs_[0] (diagnostics / tests).
  int64_t NumInputBytes(int which) const;

 private:
  friend class VersionSet;
  friend class Version;

  Compaction(const Options* options, int level);

  int level_;
  uint64_t max_output_table_bytes_;
  bool flsm_;
  Version* input_version_;
  VersionEdit edit_;

  // Each compaction reads inputs from "level_" and "level_+1"
  std::vector<TableMeta*> inputs_[2];
  std::vector<TableMeta*> promoted_;

  // Tables used to check for overlapping grandparent files
  // (parent == level_ + 1, grandparent == level_ + 2)
  std::vector<TableMeta*> grandparents_;

  // Sorted list of promoted-victim boundary keys (smallest keys of
  // promoted tables); outputs are cut before each of them.
  std::vector<InternalKey> stop_keys_;

  // Iteration cursors for the non-sharded compaction path; shards each
  // carry their own IterState (see NewIterState).  level_ptrs holds
  // indices into input_version_->files_: the state is that we are
  // positioned at one of the table ranges for each higher level than
  // the ones involved in this compaction.
  IterState default_iter_state_;
};

}  // namespace bolt
