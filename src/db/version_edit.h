// VersionEdit: a delta applied to the table metadata, serialized into the
// MANIFEST.  The MANIFEST is the commit mark of every flush/compaction
// (§2.4): new tables become visible — and victims invalid — atomically
// when the edit record is synced.
//
// BoLT extension: each table record carries (file_number, file_type,
// offset, size) so a *logical SSTable* can live at any offset of a shared
// compaction file.  Stock SSTables are the special case offset == 0,
// file_type == kTableFile.  The paper notes this adds only ~8 bytes per
// table to MANIFEST entries.
#pragma once

#include <set>
#include <utility>
#include <vector>

#include "db/dbformat.h"
#include "db/filename.h"

namespace bolt {

class VersionSet;

// Metadata of one (logical) SSTable.
struct TableMeta {
  TableMeta() = default;

  int refs = 0;
  // Seeks allowed until a seek-triggered compaction fires (LevelDB rule:
  // 1 seek per 16 KB of table data, min 100).
  int allowed_seeks = 1 << 30;

  uint64_t table_id = 0;     // unique id; TableCache key
  uint64_t file_number = 0;  // physical file holding this table
  FileType file_type = kTableFile;  // kTableFile | kCompactionFile
  uint64_t offset = 0;       // byte offset of the table within the file
  uint64_t size = 0;         // table size in bytes
  InternalKey smallest;
  InternalKey largest;
};

class VersionEdit {
 public:
  VersionEdit() { Clear(); }
  ~VersionEdit() = default;

  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetPrevLogNumber(uint64_t num) {
    has_prev_log_number_ = true;
    prev_log_number_ = num;
  }
  void SetNextFile(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }
  void SetCompactPointer(int level, const InternalKey& key) {
    compact_pointers_.push_back(std::make_pair(level, key));
  }

  // Add the specified table at the specified level.
  void AddTable(int level, const TableMeta& meta) {
    new_tables_.push_back(std::make_pair(level, meta));
  }

  // Remove the specified table from the specified level.
  void RemoveTable(int level, uint64_t table_id) {
    deleted_tables_.insert(std::make_pair(level, table_id));
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  std::string DebugString() const;

 private:
  friend class VersionSet;

  typedef std::set<std::pair<int, uint64_t>> DeletedTableSet;

  std::string comparator_;
  uint64_t log_number_;
  uint64_t prev_log_number_;
  uint64_t next_file_number_;
  SequenceNumber last_sequence_;
  bool has_comparator_;
  bool has_log_number_;
  bool has_prev_log_number_;
  bool has_next_file_number_;
  bool has_last_sequence_;

  std::vector<std::pair<int, InternalKey>> compact_pointers_;
  DeletedTableSet deleted_tables_;
  std::vector<std::pair<int, TableMeta>> new_tables_;
};

}  // namespace bolt
