// DBIter: wraps an internal (merged) iterator and exposes the user-level
// view at a snapshot: newest visible version per user key, deletion
// markers hidden.
#pragma once

#include <cstdint>

#include "db/dbformat.h"

namespace bolt {

class DBImpl;
class Iterator;

// Return a new iterator that converts internal keys (yielded by
// "*internal_iter") that were live at the specified "sequence" number
// into appropriate user keys.
Iterator* NewDBIterator(const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence);

}  // namespace bolt
