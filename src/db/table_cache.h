// TableCache: caches open Table readers (index block + bloom filter +
// file handle), capped by *entry count* — LevelDB's max_open_files
// semantics, which §2.6/§4.3.3 show favour large SSTables.
//
// With Options::fd_cache (BoLT +FC), open file descriptors are cached
// per *physical* file in a second cache, so a TableCache miss for a
// logical SSTable whose compaction file is already open skips the
// filesystem open altogether.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "db/options.h"
#include "db/version_edit.h"
#include "util/cache.h"

namespace bolt {

class Env;
class Iterator;
class RandomAccessFile;
class Table;

class TableCache {
 public:
  TableCache(const std::string& dbname, const Options& options, int entries);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  ~TableCache();

  // Return an iterator for the specified (logical) table.  If tableptr
  // is non-null, sets *tableptr to the underlying Table object, which
  // remains live while the iterator is.
  Iterator* NewIterator(const ReadOptions& options, const TableMeta& meta,
                        Table** tableptr = nullptr);

  // Call (*handle_result)(arg, found_key, found_value) for the entry
  // found for the internal key k in the table, if any.
  Status Get(const ReadOptions& options, const TableMeta& meta, const Slice& k,
             void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&));

  // Evict any entry for the specified table id.
  void Evict(uint64_t table_id);

  // Evict the cached file descriptor for the specified physical file
  // (call before deleting the file).
  void EvictFile(uint64_t file_number, FileType type);

  uint64_t hits() const { return cache_->hits(); }
  uint64_t misses() const { return cache_->misses(); }

 private:
  Status FindTable(const TableMeta& meta, Cache::Handle** handle);
  Status OpenTableFile(const TableMeta& meta, RandomAccessFile** file,
                       Cache::Handle** fd_handle);

  Env* const env_;
  const std::string dbname_;
  const Options& options_;
  // fd_cache_ is declared before cache_ so it is destroyed *after* it:
  // table entries hold handles into the fd cache and release them from
  // their deleters when cache_ is torn down.
  std::unique_ptr<Cache> fd_cache_;  // file key -> RandomAccessFile (iff +FC)
  std::unique_ptr<Cache> cache_;     // table_id -> TableAndFile
};

}  // namespace bolt
