// TableCache: caches open Table readers (index block + bloom filter +
// file handle), capped by *entry count* — LevelDB's max_open_files
// semantics, which §2.6/§4.3.3 show favour large SSTables.
//
// With Options::fd_cache (BoLT +FC), open file descriptors are cached
// per *physical* file in a second cache, so a TableCache miss for a
// logical SSTable whose compaction file is already open skips the
// filesystem open altogether.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "db/options.h"
#include "db/version_edit.h"
#include "port/port.h"
#include "util/cache.h"
#include "util/thread_annotations.h"

namespace bolt {

class Env;
class Iterator;
class RandomAccessFile;
class Table;

class TableCache {
 public:
  TableCache(const std::string& dbname, const Options& options, int entries);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  ~TableCache();

  // Return an iterator for the specified (logical) table.  If tableptr
  // is non-null, sets *tableptr to the underlying Table object, which
  // remains live while the iterator is.
  Iterator* NewIterator(const ReadOptions& options, const TableMeta& meta,
                        Table** tableptr = nullptr);

  // Call (*handle_result)(arg, found_key, found_value) for the entry
  // found for the internal key k in the table, if any.
  Status Get(const ReadOptions& options, const TableMeta& meta, const Slice& k,
             void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&));

  // Pin the Table reader for the given (logical) table so a batched
  // lookup (Version::MultiGet) can call Table::PrepareGet/FinishGet
  // across an Env::ReadBatch round without the reader being evicted
  // under it.  Charges the same probe cost + TableCache hit/miss
  // accounting as Get().  On success *table is valid until
  // ReleasePin(*pin).
  Status PinTable(const TableMeta& meta, Table** table, Cache::Handle** pin);
  void ReleasePin(Cache::Handle* pin);

  // Evict any entry for the specified table id.
  void Evict(uint64_t table_id);

  // Evict the cached file descriptor for the specified physical file
  // (call before deleting the file).
  void EvictFile(uint64_t file_number, FileType type);

  uint64_t hits() const { return cache_->hits(); }
  uint64_t misses() const { return cache_->misses(); }

  // Entries currently charged to the underlying reader cache.  When the
  // cache is shared (Options::table_cache), this is the occupancy of the
  // *shared* cache — the number every sharer reports, not a per-DB
  // slice (the shared-cache gauge contract in obs/metrics.h).
  size_t TotalCharge() const { return cache_->TotalCharge(); }

 private:
  Status FindTable(const TableMeta& meta, Cache::Handle** handle);
  Status OpenTableFile(const TableMeta& meta, RandomAccessFile** file,
                       Cache::Handle** fd_handle);

  Env* const env_;
  const std::string dbname_;
  const Options& options_;
  // fd_cache_ is declared before owned_cache_ so it is destroyed *after*
  // it: table entries hold handles into the fd cache and release them
  // from their deleters when the table cache is torn down.  The fd cache
  // is always private — file numbers are per-DB, so sharing it across
  // DBs would alias descriptors.
  std::unique_ptr<Cache> fd_cache_;  // file key -> RandomAccessFile (iff +FC)
  std::unique_ptr<Cache> owned_cache_;  // backing store iff not shared
  Cache* cache_;                     // [cache_id_|table_id] -> TableAndFile
  // Key prefix isolating this TableCache's entries in a shared cache
  // (table ids from different DBs collide; [cache_id|table_id] never).
  const uint64_t cache_id_;
  // Shared mode only: table ids this DB has inserted and not yet
  // evicted, so the destructor can purge its entries from the shared
  // cache (they reference the private fd cache and must not outlive
  // it).  Bounded: RemoveObsoleteFiles evicts every dead table; LRU
  // evictions merely leave stale ids whose Erase is a no-op.
  mutable port::Mutex ids_mu_;
  std::set<uint64_t> shared_ids_ GUARDED_BY(ids_mu_);
};

}  // namespace bolt
