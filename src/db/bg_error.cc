#include "db/bg_error.h"

namespace bolt {

const char* ErrorSeverityName(ErrorSeverity sev) {
  switch (sev) {
    case ErrorSeverity::kNone:      return "none";
    case ErrorSeverity::kTransient: return "transient";
    case ErrorSeverity::kSoftError: return "soft";
    case ErrorSeverity::kHardError: return "hard";
    case ErrorSeverity::kFatal:     return "fatal";
  }
  return "unknown";
}

const char* ErrorOperationName(ErrorOperation op) {
  switch (op) {
    case ErrorOperation::kUnknown:        return "unknown";
    case ErrorOperation::kWalAppend:      return "wal_append";
    case ErrorOperation::kWalSync:        return "wal_sync";
    case ErrorOperation::kFlush:          return "flush";
    case ErrorOperation::kCompaction:     return "compaction";
    case ErrorOperation::kManifestCommit: return "manifest_commit";
    case ErrorOperation::kReclaim:        return "reclaim";
  }
  return "unknown";
}

namespace {

const char* FileTypeName(FileType type) {
  switch (type) {
    case kLogFile:        return "wal";
    case kDBLockFile:     return "lock";
    case kTableFile:      return "table";
    case kCompactionFile: return "compaction_file";
    case kDescriptorFile: return "manifest";
    case kCurrentFile:    return "current";
    case kTempFile:       return "temp";
    case kInfoLogFile:    return "info_log";
  }
  return "unknown";
}

}  // namespace

ErrorSeverity ClassifyBgError(const Status& s, ErrorOperation op) {
  if (s.ok()) return ErrorSeverity::kNone;
  if (s.IsCorruption()) return ErrorSeverity::kFatal;
  if (s.IsIOError()) {
    switch (op) {
      case ErrorOperation::kWalAppend:
      case ErrorOperation::kWalSync:
        return ErrorSeverity::kTransient;
      case ErrorOperation::kFlush:
      case ErrorOperation::kCompaction:
      case ErrorOperation::kManifestCommit:
      case ErrorOperation::kReclaim:
        return ErrorSeverity::kSoftError;
      case ErrorOperation::kUnknown:
        return ErrorSeverity::kHardError;
    }
  }
  return ErrorSeverity::kHardError;
}

bool ErrorState::Set(const Status& s, const BgErrorContext& ctx) {
  const ErrorSeverity sev = ClassifyBgError(s, ctx.operation);
  if (sev == ErrorSeverity::kNone) return false;
  if (!ok() && sev <= severity_) return false;  // first error wins
  status_ = s;
  severity_ = sev;
  context_ = ctx;
  return true;
}

void ErrorState::Escalate() {
  if (ok()) return;
  if (severity_ < ErrorSeverity::kHardError) {
    severity_ = ErrorSeverity::kHardError;
  }
}

void ErrorState::Clear() {
  if (!ok()) last_recovered_ = Describe();
  status_ = Status::OK();
  severity_ = ErrorSeverity::kNone;
  context_ = BgErrorContext();
}

std::string ErrorState::Describe() const {
  if (ok()) return "none";
  std::string out = "op=";
  out += ErrorOperationName(context_.operation);
  if (context_.has_file_type) {
    out += " file=";
    out += FileTypeName(context_.file_type);
    if (!context_.file_name.empty()) {
      out += ":";
      out += context_.file_name;
    }
  }
  out += " severity=";
  out += ErrorSeverityName(severity_);
  out += ": ";
  out += status_.ToString();
  return out;
}

}  // namespace bolt
