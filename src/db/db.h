// DB: the public key-value store interface (LevelDB-compatible surface).
//
//   #include "db/db.h"
//   #include "engines/presets.h"
//
//   bolt::Options options = bolt::presets::BoLT();   // or LevelDB(), ...
//   bolt::DB* db = nullptr;
//   bolt::DB::Open(options, "/tmp/testdb", &db);
//   db->Put(bolt::WriteOptions(), "key", "value");
//
// See examples/quickstart.cpp for a complete walkthrough.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/db_stats.h"
#include "db/options.h"
#include "util/slice.h"
#include "util/status.h"

namespace bolt {

class Iterator;
class WriteBatch;

// Abstract handle to particular state of a DB.  A Snapshot is an
// immutable object and can therefore be safely accessed from multiple
// threads without any external synchronization.
class Snapshot {
 protected:
  virtual ~Snapshot();
};

// A range of keys
struct Range {
  Range() = default;
  Range(const Slice& s, const Slice& l) : start(s), limit(l) {}

  Slice start;  // Included in the range
  Slice limit;  // Not included in the range
};

class DB {
 public:
  // Open the database with the specified "name".  Stores a pointer to a
  // heap-allocated database in *dbptr and returns OK on success.
  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  DB() = default;
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual ~DB();

  // Set the database entry for "key" to "value".
  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;

  // Remove the database entry (if any) for "key".  It is not an error
  // if "key" did not exist in the database.
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;

  // Apply the specified updates to the database atomically.
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  // If the database contains an entry for "key" store the corresponding
  // value in *value and return OK.  Returns NotFound otherwise.
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  // Batched point lookup: read every key against ONE snapshot, returning
  // per-key statuses (OK / NotFound / error) and values ((*values)[i] is
  // meaningful iff statuses[i].ok()).  DBImpl takes the DB mutex once
  // and pins one memtable/version set for the whole batch, so an N-key
  // MGET costs one lock round-trip instead of N; the base implementation
  // is a plain Get loop for DBs without a batched path.
  virtual std::vector<Status> MultiGet(const ReadOptions& options,
                                       const std::vector<Slice>& keys,
                                       std::vector<std::string>* values);

  // Return a heap-allocated iterator over the contents of the database.
  // Caller should delete the iterator when it is no longer needed before
  // this db is deleted.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  // Return a handle to the current DB state.  Iterators and Gets created
  // with this handle observe a stable snapshot.
  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  // DB implementations can export properties about their state via this
  // method.  Supported properties:
  //   "bolt.num-files-at-level<N>"  — tables at level N
  //   "bolt.stats"                  — human-readable engine statistics
  //   "bolt.sstables"               — per-level table listing
  //   "bolt.trace.chrome"           — Chrome trace-event JSON of the
  //                                   recorded spans (tracing enabled)
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  // Write the recorded spans as a Chrome trace-event JSON file at
  // "path" on the *local* filesystem (even when the DB runs on SimEnv —
  // the dump is for humans and Perfetto, not for the DB's own env).
  // The dump carries the metrics registry under "otherData", which
  // scripts/trace_check.py uses to verify the barrier invariant.
  // Returns InvalidArgument unless Options::enable_tracing (or a tracer)
  // was set.
  virtual Status DumpTrace(const std::string& path);

  // Compact the underlying storage for the key range [*begin,*end]
  // (nullptr means before-all / after-all).
  virtual void CompactRange(const Slice* begin, const Slice* end) = 0;

  // Block until every background flush/compaction queued so far has
  // completed (no-op in simulation mode, where background work runs
  // inline on the virtual background lane).
  virtual void WaitForBackgroundWork() = 0;

  // Attempt to recover from a latched background error (e.g. a failed
  // WAL sync or MANIFEST write) without closing the DB.  On success the
  // memtable contents are made durable through a fresh MANIFEST, the WAL
  // is rotated, writes are accepted again, and OK is returned.  Returns
  // the latched error if it is not retryable (Corruption), or the new
  // failure if recovery itself fails (the DB stays read-only: reads keep
  // working, writes keep returning the error).  No-op when healthy.
  //
  // Concurrent Write() calls are safe: Resume() waits for in-flight
  // write groups to drain (they fail fast with the latched error) before
  // rebuilding the WAL.  Transient and soft errors are normally healed
  // automatically by the built-in RecoveryManager before a manual call
  // is needed (Options::max_auto_recovery_attempts).
  virtual Status Resume() = 0;

  // Integrity scrub: read every live logical SSTable with checksum
  // verification and re-read the current MANIFEST, returning the first
  // Corruption/IOError found (OK if the on-disk state is clean).  Runs
  // against the current Version without blocking writes.  With
  // Options::verify_integrity_on_resume, recovery runs this before
  // re-admitting writes.  Default: NotSupported.
  virtual Status VerifyIntegrity();

  // The currently latched background error (OK while healthy).  Unlike
  // Resume() this is a pure observation — nothing is retried or cleared.
  // The shard router polls it to report per-shard health while the
  // other shards keep serving.  Default: OK.
  virtual Status GetBackgroundError();

  // Engine-level counters for the benchmark harness (barrier counts live
  // in Env::GetIoStats(); these are the compaction-machinery counters).
  virtual DbStats GetStats() = 0;
};

// Destroy the contents of the specified database.  Be very careful using
// this method.
Status DestroyDB(const std::string& name, const Options& options);

}  // namespace bolt
