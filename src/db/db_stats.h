// Engine-level statistics: what the paper's figures report beyond raw
// throughput — compaction counts by kind, bytes moved, write stalls,
// settled-compaction promotions.
#pragma once

#include <cstdint>

namespace bolt {

struct DbStats {
  // ---- Write governors (§2.3) ----
  uint64_t slowdown_writes = 0;   // L0SlowDown 1ms sleeps
  uint64_t stall_writes = 0;      // L0Stop / memtable-full blocks
  uint64_t stall_micros = 0;      // total time writers spent blocked

  // ---- Background work ----
  uint64_t memtable_flushes = 0;
  uint64_t compactions = 0;            // merge compactions executed
  uint64_t trivial_moves = 0;          // single-file moves (no rewrite)
  uint64_t settled_promotions = 0;     // tables promoted by +STL (no rewrite)
  uint64_t pure_settled_compactions = 0;  // compactions with zero I/O
  uint64_t seek_compactions = 0;
  uint64_t subcompactions = 0;         // key-range shards run by sharded jobs
  uint64_t parallel_compactions = 0;   // jobs started with another in flight

  // ---- Compaction I/O ----
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t compaction_output_tables = 0;  // (logical) tables produced
  uint64_t compaction_files_created = 0;  // physical files produced
  uint64_t settled_bytes_saved = 0;       // bytes NOT rewritten thanks to +STL

  // ---- Space reclamation (§3.2) ----
  // Hole punching is an optimization: a failed punch is never fatal, the
  // zombie table is re-queued and reclaimed on a later pass (or when the
  // whole compaction file is unlinked).
  uint64_t hole_punches = 0;           // successful PunchHole calls
  uint64_t hole_punch_failures = 0;    // failed calls (reclamation deferred)
  uint64_t reclamation_backlog = 0;    // zombies currently awaiting a punch

  // ---- Failure handling (DESIGN.md §11) ----
  uint64_t background_errors = 0;      // failures latched by the DB
  uint64_t resumes = 0;  // successful recoveries (manual or automatic)
  uint64_t recovery_attempts = 0;      // RecoveryManager resume attempts
  uint64_t recovery_escalations = 0;   // retry budgets exhausted -> hard
  uint64_t writes_rejected_readonly = 0;  // writes refused while degraded
};

}  // namespace bolt
