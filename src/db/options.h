// Options: the engine configuration surface.  Every system the paper
// evaluates — LevelDB, LevelDB-64MB, HyperLevelDB, PebblesDB, RocksDB,
// BoLT, HyperBoLT — is a bundle of these fields (src/engines/presets.h),
// exactly as the paper implements BoLT by patching LevelDB/HyperLevelDB
// in place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace bolt {

class Cache;
class Comparator;
class Env;
class FilterPolicy;
class Logger;
class Snapshot;

namespace obs {
class EventListener;
class MetricsRegistry;
class Tracer;
}  // namespace obs

const Comparator* BytewiseComparator();
Env* PosixEnv();

// How compaction victims are selected within an overflowing level.
enum class VictimPolicy {
  kRoundRobin,  // LevelDB: cursor walks the keyspace (compact_pointer)
  kMinOverlap,  // HyperLevelDB: pick the table(s) with least next-level
                // overlap relative to their size
};

struct Options {
  // ---- General ----------------------------------------------------------
  const Comparator* comparator = BytewiseComparator();
  Env* env = PosixEnv();
  // Destination for informational engine messages and the periodic
  // stats dump.  If null on a real (non-sim) env, DB::Open creates a
  // PosixLogger at dbname/LOG, rotating the previous run's file to
  // LOG.old; on SimEnv a null stays null (no virtual I/O is charged
  // for logging).
  Logger* info_log = nullptr;
  bool create_if_missing = true;
  bool error_if_exists = false;
  bool paranoid_checks = false;

  // ---- Memory components --------------------------------------------------
  size_t write_buffer_size = 4 << 20;  // MemTable size (paper: 64 MB, /16)
  size_t block_cache_bytes = 8 << 20;  // BlockCache capacity in bytes
  // If non-null, use this block cache instead of creating one of
  // block_cache_bytes (the DB fills this in when opening).
  Cache* block_cache = nullptr;
  int max_open_files = 1000;           // TableCache capacity in *entries*
  // If non-null, the Table-reader cache (capacity in *entries*, charge 1
  // per open table) backing this DB's TableCache, instead of a private
  // one of max_open_files entries.  Pass the same cache to several DBs —
  // the ShardedDB router does — to share one max_open_files budget
  // across them; each TableCache prefixes its keys with a Cache::NewId,
  // so table ids from different DBs never collide.  Not owned by the DB.
  Cache* table_cache = nullptr;

  // ---- SSTable format -----------------------------------------------------
  uint64_t max_file_size = 128 << 10;  // SSTable target size (paper: 2 MB)
  size_t block_size = 4096;
  int block_restart_interval = 16;
  const FilterPolicy* filter_policy = nullptr;  // paper: 10-bit bloom
  // Extra on-disk bytes per record, modelling format density differences
  // (paper §4.3.3: LevelDB-family tables cost ~81 B/record more than
  // RocksDB's).  Written as real padding so write-amplification accounting
  // sees it.
  size_t format_overhead_per_entry = 0;

  // ---- Level structure ------------------------------------------------------
  int num_levels = 7;
  uint64_t max_bytes_for_level_base = 640 << 10;  // L1 limit (paper: 10 MB)
  double max_bytes_for_level_multiplier = 10.0;
  int l0_compaction_trigger = 4;

  // ---- Write governors (§2.3) ----------------------------------------------
  // L0SlowDown: foreground writers sleep 1 ms per write when L0 holds this
  // many runs.  L0Stop: writers block until compaction catches up.
  int l0_slowdown_writes_trigger = 8;
  int l0_stop_writes_trigger = 12;
  bool enable_l0_stop = true;       // HyperLevelDB removes this governor
  bool enable_l0_slowdown = true;   // ... and weakens this one
  uint64_t slowdown_sleep_micros = 1000;

  // Seek compaction: a table consulted too many times without yielding a
  // result is compacted (LevelDB's read-triggered compaction; §4.2.2).
  bool seek_compaction = true;

  // ---- BoLT features (§3) -----------------------------------------------------
  // +LS: one physical *compaction file* per compaction, holding many
  // fine-grained *logical SSTables* tracked by (file, offset, size) in the
  // MANIFEST.  Dead logical tables are reclaimed by punching holes.
  bool bolt_logical_sstables = false;
  uint64_t logical_sstable_size = 64 << 10;  // paper: 1 MB
  // +GC: merge enough victims per compaction to move about this many
  // bytes, amortizing the two barriers over a large sequential write.
  // 0 disables group compaction (single victim per compaction).
  uint64_t group_compaction_bytes = 0;  // paper best: 64 MB
  // +STL: victims that overlap nothing in the next level are promoted by
  // a MANIFEST-only edit instead of being rewritten.
  bool settled_compaction = false;
  // +FC: cache open file descriptors per compaction file.
  bool fd_cache = false;

  // ---- PebblesDB-style FLSM (§4.1) ---------------------------------------------
  // Fragmented LSM: levels are partitioned by guards; tables within a
  // guard may overlap; compaction partitions a level's tables into the
  // next level's guards without merging with resident tables.
  bool flsm_mode = false;
  // A new key becomes a guard candidate for level i with probability
  // 1/2^(flsm_guard_bits * (num_levels - i)) — deeper levels get more
  // guards, mirroring PebblesDB's sampled guard selection.
  int flsm_top_level_guards = 2;  // expected guards at level 1

  // ---- Victim picking ----------------------------------------------------------
  VictimPolicy victim_policy = VictimPolicy::kRoundRobin;

  // ---- Failure handling & auto-recovery (DESIGN.md §11) -------------------------
  // Background failures classified kTransient/kSoftError are retried
  // automatically through the Resume() path by the RecoveryManager, up
  // to this many attempts; exhaustion escalates to kHardError (degraded
  // read-only mode until a manual DB::Resume()).  0 disables
  // auto-recovery entirely (every retryable error behaves as hard).
  int max_auto_recovery_attempts = 8;
  // Bounded exponential backoff between attempts: attempt n waits
  // base * 2^(n-1) capped at max, +/- a uniform jitter fraction (so a
  // fleet of shards hitting one device error doesn't retry in lockstep).
  // SimEnv charges the backoff as virtual time.
  uint64_t recovery_backoff_base_micros = 1000;
  uint64_t recovery_backoff_max_micros = 1000000;
  double recovery_backoff_jitter = 0.25;  // fraction of the delay, [0,1)
  // Run DB::VerifyIntegrity() (checksum scrub of every live table +
  // the MANIFEST) before a recovery re-admits writes.  Off by default:
  // the scrub reads every live byte.
  bool verify_integrity_on_resume = false;

  // ---- Background parallelism (PosixEnv; clamps to 1 on SimEnv) ----------------
  // Total background threads.  1 keeps the classic LevelDB scheduler
  // (flushes and compactions share one thread).  With >= 2, one thread
  // becomes a dedicated high-priority flush lane and the remaining
  // max_background_jobs - 1 run compactions, concurrently whenever their
  // input tables are disjoint (DESIGN.md §9).
  int max_background_jobs = 2;
  // Shard one large compaction into up to this many key-range
  // subcompactions, each streaming into its own compaction file; the
  // shards' data barriers are issued concurrently, so the wall-clock
  // barrier cost of a group compaction approaches one fsync instead of
  // N.  All shard edits still commit through a single MANIFEST append.
  int max_subcompactions = 1;

  // ---- Async I/O engine (Env::ReadBatch, DESIGN.md §14) -------------------------
  // Allow the io_uring backend for batched reads on kernels that support
  // it.  When false (or when BOLT_IO_URING=0 is in the environment, or
  // the runtime probe fails) the portable thread-pool emulation runs
  // instead; the ReadBatch API and its semantics are identical.
  bool io_uring_enabled = true;
  // Upper bound on reads in flight per MultiGet batch submission.
  // <= 1 makes MultiGet resolve SST blocks serially (the pre-batching
  // behaviour, and the bench's serial baseline).
  int multiget_parallelism = 8;
  // Compaction input readahead: prefetch up to this many upcoming data
  // blocks of each input table into the block cache ahead of the merge
  // loop, using one batched read per refill.  0 disables.
  int compaction_readahead_blocks = 0;
  // posix_fadvise hints on compaction inputs: WILLNEED on the readahead
  // window, DONTNEED on consumed ranges — so large compactions stop
  // evicting the hot working set from the OS page cache.  No-op on
  // SimEnv (its page cache is modeled, not advised).
  bool advise_compaction_inputs = false;

  // ---- Observability (src/obs/) -------------------------------------------------
  // Metrics registry every layer (DB, caches, WAL, env) charges into.
  // If null, the DB creates and owns one when opening; pass your own to
  // share a registry across DB instances or read it from a bench.
  obs::MetricsRegistry* metrics = nullptr;
  // Master switch for *timed* observability: per-operation PerfContext
  // timing and registry latency histograms.  Cheap counters (tickers,
  // cache hit/miss) stay on regardless.  Disable to shave clock reads
  // off the hot paths.
  bool enable_perf_context = true;
  // Listeners invoked (in order) on flush/compaction begin+end,
  // subcompaction shard begin+end, write stalls, WAL sync barriers,
  // hole punches, and background-error / resume transitions.  See
  // obs/event_listener.h for the contract.
  std::vector<std::shared_ptr<obs::EventListener>> listeners;

  // ---- Span tracing (src/obs/tracer.h) ------------------------------------------
  // When enabled, the DB records spans — write-group commits, WAL
  // append+sync, flushes, compaction jobs and their shards, settled
  // promotions, hole-punch reclamation, MANIFEST commits — and exports
  // them as Chrome trace-event JSON via GetProperty("bolt.trace.chrome")
  // or DB::DumpTrace().  Wrap the env in a TracingEnv to also capture
  // per-file-op spans and the per-file-type barrier tickers.
  // If tracer is null and enable_tracing is set, the DB creates and
  // owns one; pass your own to aggregate several DBs into one timeline.
  obs::Tracer* tracer = nullptr;
  bool enable_tracing = false;
  // Bound on retained spans per tracer thread-stripe (8 stripes).
  size_t trace_capacity = 8192;

  // Every stats_dump_period_sec a low-priority background task logs the
  // interval's metric deltas (MetricsRegistry::SnapshotDelta) to
  // info_log.  0 disables.  Ignored on SimEnv, whose virtual clock has
  // no wall-time ticks to dump on.
  uint32_t stats_dump_period_sec = 0;

  // ---- Simulation CPU model (ignored on PosixEnv) ------------------------------
  // Per-operation foreground CPU cost and per-entry compaction merge
  // cost; presets use these to model HyperLevelDB's improved write-path
  // parallelism and RocksDB's multi-threaded compaction/read paths.
  uint64_t sim_write_cpu_ns = 1500;
  uint64_t sim_read_cpu_ns = 1500;
  // CPU cost per table consulted during a lookup (TableCache probe +
  // bloom filter + index binary search).  This is what makes overlapping
  // tables (L0 pile-ups, FLSM levels) cost something even when the bloom
  // filters avoid device reads.
  uint64_t sim_table_probe_cpu_ns = 700;
  uint64_t sim_compaction_cpu_per_entry_ns = 250;
  double bg_parallelism = 1.0;  // >1 scales down background lane time
};

struct ReadOptions {
  bool verify_checksums = false;
  bool fill_cache = true;
  const Snapshot* snapshot = nullptr;
  // Iterator readahead: prefetch this many upcoming data blocks into the
  // block cache per refill batch (compaction inputs set it from
  // Options::compaction_readahead_blocks).  0 disables.
  int readahead_blocks = 0;
};

struct WriteOptions {
  // If true, the WAL is fsync'ed before the write is acknowledged.  The
  // paper's YCSB runs use the default (false), as do LevelDB benchmarks.
  bool sync = false;
};

}  // namespace bolt
