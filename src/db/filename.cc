#include "db/filename.h"

#include <cassert>
#include <cstdio>

#include "env/env.h"

namespace bolt {

static std::string MakeFileName(const std::string& dbname, uint64_t number,
                                const char* suffix) {
  char buf[100];
  snprintf(buf, sizeof(buf), "/%06llu.%s",
           static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

std::string LogFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "ldb");
}

std::string CompactionFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "cft");
}

std::string DescriptorFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  char buf[100];
  snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string LockFileName(const std::string& dbname) { return dbname + "/LOCK"; }

std::string TempFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "dbtmp");
}

std::string InfoLogFileName(const std::string& dbname) {
  return dbname + "/LOG";
}

std::string OldInfoLogFileName(const std::string& dbname) {
  return dbname + "/LOG.old";
}

// Owned filenames have the form:
//    dbname/CURRENT
//    dbname/LOCK
//    dbname/LOG
//    dbname/MANIFEST-[0-9]+
//    dbname/[0-9]+.(log|ldb|cft|dbtmp)
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  Slice rest(filename);
  if (rest == "CURRENT") {
    *number = 0;
    *type = kCurrentFile;
  } else if (rest == "LOCK") {
    *number = 0;
    *type = kDBLockFile;
  } else if (rest == "LOG" || rest == "LOG.old") {
    *number = 0;
    *type = kInfoLogFile;
  } else if (rest.starts_with("MANIFEST-")) {
    rest.remove_prefix(strlen("MANIFEST-"));
    uint64_t num = 0;
    size_t digits = 0;
    while (!rest.empty() && rest[0] >= '0' && rest[0] <= '9') {
      num = num * 10 + (rest[0] - '0');
      rest.remove_prefix(1);
      digits++;
    }
    if (digits == 0 || !rest.empty()) {
      return false;
    }
    *type = kDescriptorFile;
    *number = num;
  } else {
    // Avoid strtoull etc. to keep filename parsing locale-independent.
    uint64_t num = 0;
    size_t digits = 0;
    while (!rest.empty() && rest[0] >= '0' && rest[0] <= '9') {
      num = num * 10 + (rest[0] - '0');
      rest.remove_prefix(1);
      digits++;
    }
    if (digits == 0) {
      return false;
    }
    Slice suffix = rest;
    if (suffix == Slice(".log")) {
      *type = kLogFile;
    } else if (suffix == Slice(".ldb")) {
      *type = kTableFile;
    } else if (suffix == Slice(".cft")) {
      *type = kCompactionFile;
    } else if (suffix == Slice(".dbtmp")) {
      *type = kTempFile;
    } else {
      return false;
    }
    *number = num;
  }
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number) {
  // Remove leading "dbname/" and add newline to manifest file name
  std::string manifest = DescriptorFileName(dbname, descriptor_number);
  Slice contents = manifest;
  assert(contents.starts_with(dbname + "/"));
  contents.remove_prefix(dbname.size() + 1);
  std::string tmp = TempFileName(dbname, descriptor_number);
  Status s = WriteStringToFile(env, contents.ToString() + "\n", tmp, true);
  if (s.ok()) {
    s = env->RenameFile(tmp, CurrentFileName(dbname));
  }
  if (!s.ok()) {
    (void)env->RemoveFile(tmp);  // Best-effort cleanup; s already carries
                                 // the primary failure.
  }
  return s;
}

}  // namespace bolt
