#include "db/version_edit.h"

#include <sstream>

#include "util/coding.h"

namespace bolt {

// Tag numbers for serialized VersionEdit.  These numbers are written to
// disk and should not be changed.
enum Tag {
  kComparator = 1,
  kLogNumber = 2,
  kNextFileNumber = 3,
  kLastSequence = 4,
  kCompactPointer = 5,
  kDeletedTable = 6,
  kNewTable = 7,
  // 8 was used for large value refs in ancient LevelDB
  kPrevLogNumber = 9,
};

void VersionEdit::Clear() {
  comparator_.clear();
  log_number_ = 0;
  prev_log_number_ = 0;
  last_sequence_ = 0;
  next_file_number_ = 0;
  has_comparator_ = false;
  has_log_number_ = false;
  has_prev_log_number_ = false;
  has_next_file_number_ = false;
  has_last_sequence_ = false;
  compact_pointers_.clear();
  deleted_tables_.clear();
  new_tables_.clear();
}

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_comparator_) {
    PutVarint32(dst, kComparator);
    PutLengthPrefixedSlice(dst, comparator_);
  }
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_prev_log_number_) {
    PutVarint32(dst, kPrevLogNumber);
    PutVarint64(dst, prev_log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }

  for (const auto& [level, key] : compact_pointers_) {
    PutVarint32(dst, kCompactPointer);
    PutVarint32(dst, level);
    PutLengthPrefixedSlice(dst, key.Encode());
  }

  for (const auto& [level, table_id] : deleted_tables_) {
    PutVarint32(dst, kDeletedTable);
    PutVarint32(dst, level);
    PutVarint64(dst, table_id);
  }

  for (const auto& [level, f] : new_tables_) {
    PutVarint32(dst, kNewTable);
    PutVarint32(dst, level);
    PutVarint64(dst, f.table_id);
    PutVarint64(dst, f.file_number);
    PutVarint32(dst, static_cast<uint32_t>(f.file_type));
    PutVarint64(dst, f.offset);
    PutVarint64(dst, f.size);
    PutLengthPrefixedSlice(dst, f.smallest.Encode());
    PutLengthPrefixedSlice(dst, f.largest.Encode());
  }
}

static bool GetInternalKey(Slice* input, InternalKey* dst) {
  Slice str;
  if (GetLengthPrefixedSlice(input, &str)) {
    return dst->DecodeFrom(str);
  } else {
    return false;
  }
}

static bool GetLevel(Slice* input, int* level) {
  uint32_t v;
  if (GetVarint32(input, &v) && v < 64) {
    *level = v;
    return true;
  } else {
    return false;
  }
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  Clear();
  Slice input = src;
  const char* msg = nullptr;
  uint32_t tag;

  // Temporary storage for parsing
  int level;
  uint64_t number;
  TableMeta f;
  Slice str;
  InternalKey key;

  while (msg == nullptr && GetVarint32(&input, &tag)) {
    switch (tag) {
      case kComparator:
        if (GetLengthPrefixedSlice(&input, &str)) {
          comparator_ = str.ToString();
          has_comparator_ = true;
        } else {
          msg = "comparator name";
        }
        break;

      case kLogNumber:
        if (GetVarint64(&input, &log_number_)) {
          has_log_number_ = true;
        } else {
          msg = "log number";
        }
        break;

      case kPrevLogNumber:
        if (GetVarint64(&input, &prev_log_number_)) {
          has_prev_log_number_ = true;
        } else {
          msg = "previous log number";
        }
        break;

      case kNextFileNumber:
        if (GetVarint64(&input, &next_file_number_)) {
          has_next_file_number_ = true;
        } else {
          msg = "next file number";
        }
        break;

      case kLastSequence:
        if (GetVarint64(&input, &last_sequence_)) {
          has_last_sequence_ = true;
        } else {
          msg = "last sequence number";
        }
        break;

      case kCompactPointer:
        if (GetLevel(&input, &level) && GetInternalKey(&input, &key)) {
          compact_pointers_.push_back(std::make_pair(level, key));
        } else {
          msg = "compaction pointer";
        }
        break;

      case kDeletedTable:
        if (GetLevel(&input, &level) && GetVarint64(&input, &number)) {
          deleted_tables_.insert(std::make_pair(level, number));
        } else {
          msg = "deleted table entry";
        }
        break;

      case kNewTable: {
        uint32_t ftype;
        if (GetLevel(&input, &level) && GetVarint64(&input, &f.table_id) &&
            GetVarint64(&input, &f.file_number) &&
            GetVarint32(&input, &ftype) && GetVarint64(&input, &f.offset) &&
            GetVarint64(&input, &f.size) &&
            GetInternalKey(&input, &f.smallest) &&
            GetInternalKey(&input, &f.largest) &&
            (ftype == kTableFile || ftype == kCompactionFile)) {
          f.file_type = static_cast<FileType>(ftype);
          new_tables_.push_back(std::make_pair(level, f));
        } else {
          msg = "new table entry";
        }
        break;
      }

      default:
        msg = "unknown tag";
        break;
    }
  }

  if (msg == nullptr && !input.empty()) {
    msg = "invalid tag";
  }

  Status result;
  if (msg != nullptr) {
    result = Status::Corruption("VersionEdit", msg);
  }
  return result;
}

std::string VersionEdit::DebugString() const {
  std::ostringstream ss;
  ss << "VersionEdit {";
  if (has_comparator_) {
    ss << "\n  Comparator: " << comparator_;
  }
  if (has_log_number_) {
    ss << "\n  LogNumber: " << log_number_;
  }
  if (has_prev_log_number_) {
    ss << "\n  PrevLogNumber: " << prev_log_number_;
  }
  if (has_next_file_number_) {
    ss << "\n  NextFile: " << next_file_number_;
  }
  if (has_last_sequence_) {
    ss << "\n  LastSeq: " << last_sequence_;
  }
  for (const auto& [level, key] : compact_pointers_) {
    ss << "\n  CompactPointer: " << level << " " << key.DebugString();
  }
  for (const auto& [level, table_id] : deleted_tables_) {
    ss << "\n  RemoveTable: " << level << " " << table_id;
  }
  for (const auto& [level, f] : new_tables_) {
    ss << "\n  AddTable: " << level << " id=" << f.table_id << " file="
       << f.file_number << (f.file_type == kCompactionFile ? "(cft)" : "(ldb)")
       << " off=" << f.offset << " size=" << f.size << " "
       << f.smallest.DebugString() << " .. " << f.largest.DebugString();
  }
  ss << "\n}\n";
  return ss.str();
}

}  // namespace bolt
