// DBImpl: the engine.  One implementation serves every system the paper
// evaluates; Options decide which one it behaves as (src/engines).
//
// Scheduling has two modes:
//  * PosixEnv: a writer queue with group commit, plus a two-lane
//    background pool.  With max_background_jobs == 1 this degenerates to
//    the classic LevelDB scheduler (one thread does both flushes and
//    compactions).  With more jobs, flushes get a dedicated
//    high-priority lane and up to max_background_jobs - 1 compactions
//    run concurrently whenever their input tables are disjoint, tracked
//    by the compacting_tables_ registry (DESIGN.md §9).
//  * SimEnv: single real thread, two virtual timelines.  Background work
//    runs inline but is *charged* to the background lane; the write
//    governors (§2.3) stall the foreground lane against flush/compaction
//    completion times, so write stalls emerge from the barrier costs
//    rather than being scripted.  Parallelism knobs clamp to 1; the
//    bg_parallelism option models multi-threaded compaction speedups.
#pragma once

#include <atomic>
#include <deque>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/bg_error.h"
#include "db/db.h"
#include "db/dbformat.h"
#include "db/snapshot.h"
#include "db/version_edit.h"
#include "env/env.h"
#include "obs/metrics.h"
#include "port/port.h"
#include "util/thread_annotations.h"

namespace bolt {

class Compaction;
class MemTable;
class SimContext;
class TableCache;
class Version;
class VersionEdit;
class VersionSet;
namespace log {
class Writer;
}
namespace obs {
class Tracer;
struct WriteStallInfo;
}  // namespace obs

class DBImpl : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);

  DBImpl(const DBImpl&) = delete;
  DBImpl& operator=(const DBImpl&) = delete;

  ~DBImpl() override;

  // Implementations of the DB interface
  Status Put(const WriteOptions&, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions&, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  std::vector<Status> MultiGet(const ReadOptions& options,
                               const std::vector<Slice>& keys,
                               std::vector<std::string>* values) override;
  Status GetBackgroundError() override;
  Iterator* NewIterator(const ReadOptions&) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  Status DumpTrace(const std::string& path) override;
  void CompactRange(const Slice* begin, const Slice* end) override;
  void WaitForBackgroundWork() override;
  DbStats GetStats() override;
  Status Resume() override;
  Status VerifyIntegrity() override;

  // ---- Extra methods (for testing / benches) ----

  // Compact any table(s) at the specified level that overlap
  // [*begin,*end].
  void TEST_CompactRange(int level, const Slice* begin, const Slice* end);

  // Force current memtable contents to be flushed.
  Status TEST_CompactMemTable();

  // Return an internal iterator over the current state of the database.
  Iterator* TEST_NewInternalIterator();

  // Structural invariant check over the current version ("" = OK).
  std::string TEST_CheckInvariants();

  int TEST_NumTablesAtLevel(int level);
  int64_t TEST_BytesAtLevel(int level);

 private:
  friend class DB;
  struct CompactionState;
  struct SubcompactionState;
  struct Writer;

  Iterator* NewInternalIterator(const ReadOptions&,
                                SequenceNumber* latest_snapshot);

  Status NewDB();

  // Recover the descriptor from persistent storage.  May do a significant
  // amount of work to recover recently logged updates.
  Status Recover(VersionEdit* edit) REQUIRES(mutex_);

  void MaybeIgnoreError(Status* s) const;

  // Delete any unneeded files, stale in-memory entries, and punch holes
  // for dead logical SSTables (BoLT §3.2).  Releases mutex_ for the
  // deletions themselves.
  void RemoveObsoleteFiles() REQUIRES(mutex_);

  // Compact the in-memory write buffer to disk.  Switches to a new
  // log-file/memtable and writes a new descriptor iff successful.
  void CompactMemTable() REQUIRES(mutex_);

  Status RecoverLogFile(uint64_t log_number, VersionEdit* edit,
                        SequenceNumber* max_sequence) REQUIRES(mutex_);

  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit)
      REQUIRES(mutex_);

  Status MakeRoomForWrite(bool force /* compact even if there is room? */)
      REQUIRES(mutex_);
  // Coalesces queued writers into one group.  *group_sync is set when
  // any member asked for durability (the leader then issues ONE fsync
  // covering the whole group); *sync_requests counts those members, so
  // the write path can charge kWalGroupSyncShared for the barriers the
  // sharing saved.
  WriteBatch* BuildBatchGroup(Writer** last_writer, bool* group_sync,
                              int* sync_requests) REQUIRES(mutex_);

  // Latch a background error with its origin context (DESIGN.md §11).
  // Classifies the severity, charges the severity tickers, notifies
  // OnBackgroundError listeners, logs one line, and — for retryable
  // severities — kicks the RecoveryManager.
  void RecordBackgroundError(const Status& s, ErrorOperation op,
                             bool has_file_type = false,
                             FileType file_type = kLogFile,
                             const std::string& file_name = std::string())
      REQUIRES(mutex_);

  // ---- RecoveryManager (DESIGN.md §11) ----
  // Queue an auto-recovery attempt on the low-priority lane (no-op if
  // one is already queued/running, the error isn't retryable, or
  // auto-recovery is disabled).  In sim mode the retries run inline,
  // charging the backoff as virtual time.
  void MaybeScheduleRecovery() REQUIRES(mutex_);
  static void BGRecoveryWork(void* db);
  // Entered with mutex_ held iff simulated (the pool task path locks it
  // itself) — a conditional protocol thread-safety analysis cannot
  // express, so the analysis is disabled for this one function.
  void BackgroundRecovery() NO_THREAD_SAFETY_ANALYSIS;
  // Bounded exponential backoff with jitter for the given 1-based
  // attempt number (advances the jitter seed).
  uint64_t RecoveryBackoffMicros(int attempt) REQUIRES(mutex_);
  // The Resume() machinery, shared by the manual API and the
  // RecoveryManager.
  Status ResumeInternal(bool auto_recovery) REQUIRES(mutex_);
  // The error a write observes while bg_error_ is latched: the raw
  // latched status for retryable severities, a distinct read-only
  // IOError subtype once degraded.  REQUIRES bg_error_ latched.
  Status DegradedWriteError() REQUIRES(mutex_);
  // VerifyIntegrity with mutex_ already held (released during I/O).
  Status VerifyIntegrityLocked() REQUIRES(mutex_);

  void MaybeScheduleCompaction() REQUIRES(mutex_);
  // Schedule a flush of imm_ (high-priority lane when dedicated).
  void MaybeScheduleFlush() REQUIRES(mutex_);
  static void BGWork(void* db);
  static void BGFlushWork(void* db);
  void BackgroundCall() EXCLUDES(mutex_);
  void BackgroundFlushCall() EXCLUDES(mutex_);
  void BackgroundCompaction() REQUIRES(mutex_);
  // True iff any input/promoted table of c is part of an in-flight
  // compaction.
  bool CompactionConflictsWithInFlight(const Compaction* c) const
      REQUIRES(mutex_);
  void RegisterCompactionInputs(const Compaction* c) REQUIRES(mutex_);
  void UnregisterCompactionInputs(const Compaction* c) REQUIRES(mutex_);
  void CleanupCompaction(CompactionState* compact) REQUIRES(mutex_);
  Status DoCompactionWork(CompactionState* compact) REQUIRES(mutex_);
  // Stream one key-range shard of a compaction into its own output
  // writer (takes mutex_ only for the optional inline flush).
  void RunSubcompaction(CompactionState* compact, SubcompactionState* sub,
                        bool may_flush_imm) EXCLUDES(mutex_);
  Status InstallCompactionResults(CompactionState* compact)
      REQUIRES(mutex_);

  const Comparator* user_comparator() const {
    return internal_comparator_.user_comparator();
  }

  // ---- Observability helpers ----
  // Notify every registered listener of a write stall and charge the
  // stall tickers/histogram + PerfContext.
  void RecordWriteStall(const obs::WriteStallInfo& info);

  // Periodic stats dumper (Options::stats_dump_period_sec, real Env
  // only).  A dedicated timer thread wakes every period and enqueues
  // BGStatsDumpWork on the low-priority pool lane; the pool task logs
  // the interval delta of the metrics registry to options_.info_log.
  void StatsDumpLoop();
  static void BGStatsDumpWork(void* db);
  void BackgroundStatsDump();

  // ---- Simulation-mode helpers ----
  bool simulated() const { return sim_ != nullptr; }
  // Drain every pending piece of background work inline, charging the
  // background lane.
  void RunBackgroundWorkInlineSim() REQUIRES(mutex_);
  // Number of L0 runs as of virtual time "now" (applies queued events).
  int VirtualL0Runs(uint64_t now) REQUIRES(mutex_);
  void AddL0Event(uint64_t time, int delta) REQUIRES(mutex_);
  // Virtual time at which the L0 run count next decreases (or "now" if
  // no such event is pending).
  uint64_t NextL0DropTime(uint64_t now) REQUIRES(mutex_);

  // Dead logical SSTable awaiting hole punching.
  struct ZombieTable {
    uint64_t table_id;
    uint64_t file_number;
    uint64_t offset;
    uint64_t size;
  };

  // Constant after construction
  Env* const env_;
  const InternalKeyComparator internal_comparator_;
  const InternalFilterPolicy internal_filter_policy_;
  const Options options_;  // options_.comparator == &internal_comparator_
  const bool owns_info_log_;
  const bool owns_block_cache_;
  // Every layer charges into this registry; DbStats is a snapshot of it.
  obs::MetricsRegistry* const metrics_;
  const bool owns_metrics_;
  // Span recorder (null unless Options::enable_tracing / a tracer was
  // supplied).  The env is pointed at it too, so TracingEnv file-op
  // spans land in the same buffers as the DB-layer spans.
  obs::Tracer* const tracer_;
  const bool owns_tracer_;
  const std::string dbname_;
  SimContext* const sim_;  // non-null iff options_.env is simulated

  // table_cache_ provides its own synchronization
  TableCache* const table_cache_;

  // State below is protected by mutex_
  port::Mutex mutex_;
  std::atomic<bool> shutting_down_;
  // Bound to mutex_: DBImpl follows LevelDB's manual Unlock()/Lock()
  // discipline, so waits happen on the raw mutex.
  port::CondVar background_work_finished_signal_;
  // mem_, logfile_ and log_ carry LevelDB's write-path convention
  // rather than a GUARDED_BY: the front-of-queue writer in Write() owns
  // them while mutex_ is *released* (BuildBatchGroup hands it the
  // group), so lock-based analysis cannot express their protocol.
  MemTable* mem_;
  MemTable* imm_ GUARDED_BY(mutex_);  // Memtable being compacted
  std::atomic<bool> has_imm_;     // So bg thread can detect non-null imm_
  WritableFile* logfile_;
  uint64_t logfile_number_ GUARDED_BY(mutex_);
  log::Writer* log_;

  // Queue of writers.
  std::deque<Writer*> writers_ GUARDED_BY(mutex_);
  WriteBatch* tmp_batch_ GUARDED_BY(mutex_);

  SnapshotList snapshots_ GUARDED_BY(mutex_);

  // Set of (physical) files being generated by in-flight jobs.
  std::set<uint64_t> pending_outputs_ GUARDED_BY(mutex_);

  // Dead logical tables not yet hole-punched.
  std::vector<ZombieTable> zombies_ GUARDED_BY(mutex_);

  // Latched once PunchHole returns NotSupported: stop retrying; zombies
  // are reclaimed only when their whole compaction file is unlinked.
  bool punch_hole_unsupported_ GUARDED_BY(mutex_) = false;

  // Is a flush job queued on the flush lane or running?
  bool bg_flush_scheduled_ GUARDED_BY(mutex_);
  // Is some thread currently inside CompactMemTable (which releases
  // mutex_ mid-build)?  PosixEnv lane widths are a process-wide
  // high-water mark shared by every open DB, so even a
  // max_background_jobs == 1 DB can see its flush job and a shared-lane
  // inline flush run on different threads; this flag is the per-DB
  // mutual exclusion.
  bool imm_flush_active_ GUARDED_BY(mutex_);
  // Number of compaction jobs queued on the compaction lane or running.
  int bg_compactions_scheduled_ GUARDED_BY(mutex_);
  // Table ids (inputs + promoted) of compactions currently running with
  // mutex_ released; new picks touching any of these are deferred.
  std::set<uint64_t> compacting_tables_ GUARDED_BY(mutex_);
  // Number of merge compactions currently mid-flight (mutex_ released).
  int merge_compactions_in_flight_ GUARDED_BY(mutex_);
  // Guards RemoveObsoleteFiles, which releases mutex_ for I/O: a second
  // background thread entering concurrently would double-delete.
  bool removing_obsolete_files_ GUARDED_BY(mutex_);
  // True when flushes run on a dedicated high-priority lane
  // (max_background_jobs > 1 on a real Env).  Constant after
  // construction (read by subcompactions with mutex_ released).
  const bool flush_lane_dedicated_;
  // Max concurrent compaction jobs on the low-priority lane.  Constant
  // after construction.
  const int max_compaction_jobs_;

  // Information for a manual compaction
  struct ManualCompaction {
    int level;
    bool done;
    const InternalKey* begin;  // null means beginning of key range
    const InternalKey* end;    // null means end of key range
    InternalKey tmp_storage;   // Used to keep track of compaction progress
  };
  ManualCompaction* manual_compaction_ GUARDED_BY(mutex_);

  VersionSet* const versions_;

  // Latched background-error state: severity + origin context
  // (DESIGN.md §11).  bg_error_.ok() plays the role the old bare
  // `Status bg_error_` did; writes observe status()/severity().
  ErrorState bg_error_ GUARDED_BY(mutex_);

  // ---- RecoveryManager state (protected by mutex_) ----
  // Is an auto-recovery task queued on the pool or running?  The
  // destructor drains this flag exactly like the bg job flags.
  bool recovery_scheduled_ GUARDED_BY(mutex_) = false;
  // 1-based attempt counter for the current error; reset when the latch
  // clears or a new error replaces it.
  int recovery_attempt_ GUARDED_BY(mutex_) = 0;
  // Seedable RNG for backoff jitter (only recovery tasks touch it).
  uint64_t recovery_jitter_seed_ GUARDED_BY(mutex_) =
      0x9e3779b97f4a7c15ull;

  // ---- Simulation-mode state ----
  // Virtual completion of the last flush.
  uint64_t imm_done_time_ GUARDED_BY(mutex_) = 0;
  std::deque<std::pair<uint64_t, int>> vl0_events_ GUARDED_BY(mutex_);
  int vl0_runs_ GUARDED_BY(mutex_) = 0;
  bool in_sim_background_ GUARDED_BY(mutex_) = false;  // re-entrancy guard
  // Reserved tracer tid for the virtual background lane: one OS thread
  // plays both lanes in sim mode, so inline background work overrides
  // its tid to keep the exported trace's lanes separate.
  uint32_t sim_bg_tid_ = 0;

  // ---- Periodic stats dumper state ----
  // Timer thread (real Env with stats_dump_period_sec > 0 only).
  std::thread stats_thread_;
  // Wakes the timer thread early on shutdown; bound to mutex_.
  port::CondVar stats_cv_;
  // Is a dump task queued on the pool or running?
  bool stats_dump_scheduled_ GUARDED_BY(mutex_) = false;
  // Previous snapshot, advanced by each dump (only the dump task and
  // the destructor — after the flag drains — touch it).
  obs::MetricsRegistry::Snapshot stats_last_snapshot_;
  uint64_t stats_last_dump_ns_ = 0;
};

}  // namespace bolt
