// WriteBatch: an ordered group of Put/Delete operations applied
// atomically.  Its serialized form is exactly what the write-ahead log
// stores, so group commit (§2.1) is concatenation of batches.
#pragma once

#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace bolt {

class MemTable;

class WriteBatch {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };

  WriteBatch();

  // Intentionally copyable.
  WriteBatch(const WriteBatch&) = default;
  WriteBatch& operator=(const WriteBatch&) = default;

  ~WriteBatch();

  // Store the mapping "key->value" in the database.
  void Put(const Slice& key, const Slice& value);

  // If the database contains a mapping for "key", erase it.
  void Delete(const Slice& key);

  // Clear all updates buffered in this batch.
  void Clear();

  // The size of the database changes caused by this batch.
  [[nodiscard]] size_t ApproximateSize() const;

  // Copies the operations in "source" to this batch.
  void Append(const WriteBatch& source);

  // Support for iterating over the contents of a batch.
  Status Iterate(Handler* handler) const;

 private:
  friend class WriteBatchInternal;

  std::string rep_;  // See comment in write_batch.cc for the format of rep_
};

// Internal interface used by the DB implementation.
class WriteBatchInternal {
 public:
  // Return the number of entries in the batch.
  static int Count(const WriteBatch* batch);
  static void SetCount(WriteBatch* batch, int n);

  // Return the sequence number for the start of this batch.
  static uint64_t Sequence(const WriteBatch* batch);
  static void SetSequence(WriteBatch* batch, uint64_t seq);

  static Slice Contents(const WriteBatch* batch) { return Slice(batch->rep_); }
  static size_t ByteSize(const WriteBatch* batch) { return batch->rep_.size(); }
  static void SetContents(WriteBatch* batch, const Slice& contents);

  static Status InsertInto(const WriteBatch* batch, MemTable* memtable);

  static void Append(WriteBatch* dst, const WriteBatch* src);
};

}  // namespace bolt
