#include "db/version_set.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "db/filename.h"
#include "db/table_cache.h"
#include "env/env.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "table/iterator.h"
#include "table/merger.h"
#include "table/table.h"
#include "table/two_level_iterator.h"
#include "util/coding.h"
#include "util/sync_point.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace bolt {

static void AppendNumberTo(std::string* str, uint64_t num) {
  char buf[30];
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(num));
  str->append(buf);
}

static size_t TargetTableSize(const Options* options) {
  return options->bolt_logical_sstables
             ? static_cast<size_t>(options->logical_sstable_size)
             : static_cast<size_t>(options->max_file_size);
}

// Maximum bytes of overlaps in grandparent (i.e., level+2) before we
// stop building a single output table in a level->level+1 compaction.
static int64_t MaxGrandParentOverlapBytes(const Options* options) {
  return 10 * static_cast<int64_t>(TargetTableSize(options));
}

static double MaxBytesForLevelImpl(const Options* options, int level) {
  // Result for both level-0 and level-1: level 0 is special-cased by the
  // count-based trigger.
  double result = static_cast<double>(options->max_bytes_for_level_base);
  while (level > 1) {
    result *= options->max_bytes_for_level_multiplier;
    level--;
  }
  return result;
}

uint64_t VersionSet::MaxBytesForLevel(int level) const {
  return static_cast<uint64_t>(MaxBytesForLevelImpl(options_, level));
}

uint64_t VersionSet::MaxTableSizeForLevel(int level) const {
  return TargetTableSize(options_);
}

static int64_t TotalTableSize(const std::vector<TableMeta*>& files) {
  int64_t sum = 0;
  for (size_t i = 0; i < files.size(); i++) {
    sum += files[i]->size;
  }
  return sum;
}

Version::Version(VersionSet* vset)
    : vset_(vset),
      next_(this),
      prev_(this),
      refs_(0),
      files_(vset->options()->num_levels),
      file_to_compact_(nullptr),
      file_to_compact_level_(-1),
      compaction_score_(-1),
      compaction_level_(-1) {}

Version::~Version() {
  assert(refs_ == 0);

  // Remove from linked list
  prev_->next_ = next_;
  next_->prev_ = prev_;

  // Drop references to files
  for (auto& level_files : files_) {
    for (TableMeta* f : level_files) {
      assert(f->refs > 0);
      f->refs--;
      if (f->refs <= 0) {
        delete f;
      }
    }
  }
}

bool Version::LevelMayOverlap(int level) const {
  return level == 0 || vset_->options()->flsm_mode;
}

int FindTable(const InternalKeyComparator& icmp,
              const std::vector<TableMeta*>& files, const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    uint32_t mid = (left + right) / 2;
    const TableMeta* f = files[mid];
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      // Key at "mid.largest" is < "target".  Therefore all
      // files at or before "mid" are uninteresting.
      left = mid + 1;
    } else {
      // Key at "mid.largest" is >= "target".  Therefore all files
      // after "mid" are uninteresting.
      right = mid;
    }
  }
  return right;
}

static bool AfterFile(const Comparator* ucmp, const Slice* user_key,
                      const TableMeta* f) {
  // null user_key occurs before all keys and is therefore never after *f
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

static bool BeforeFile(const Comparator* ucmp, const Slice* user_key,
                       const TableMeta* f) {
  // null user_key occurs after all keys and is therefore never before *f
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<TableMeta*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Need to check against all files
    for (size_t i = 0; i < files.size(); i++) {
      const TableMeta* f = files[i];
      if (AfterFile(ucmp, smallest_user_key, f) ||
          BeforeFile(ucmp, largest_user_key, f)) {
        // No overlap
      } else {
        return true;  // Overlap
      }
    }
    return false;
  }

  // Binary search over file list
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    // Find the earliest possible internal key for smallest_user_key
    InternalKey small_key(*smallest_user_key, kMaxSequenceNumber,
                          kValueTypeForSeek);
    index = FindTable(icmp, files, small_key.Encode());
  }

  if (index >= files.size()) {
    // beginning of range is after all files, so no overlap.
    return false;
  }

  return !BeforeFile(ucmp, largest_user_key, files[index]);
}

// An internal iterator.  For a given version/level pair, yields
// information about the tables in the level.  For a given entry, key()
// is the largest key that occurs in the table, and value() is a
// 33-byte record containing the table's id, physical file number and
// type, offset, and size, encoded using fixed-width encodings.
class Version::LevelTableNumIterator : public Iterator {
 public:
  LevelTableNumIterator(const InternalKeyComparator& icmp,
                        const std::vector<TableMeta*>* flist)
      : icmp_(icmp), flist_(flist), index_(flist->size()) {  // invalid
  }
  bool Valid() const override { return index_ < flist_->size(); }
  void Seek(const Slice& target) override {
    index_ = FindTable(icmp_, *flist_, target);
  }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = flist_->empty() ? 0 : flist_->size() - 1;
  }
  void Next() override {
    assert(Valid());
    index_++;
  }
  void Prev() override {
    assert(Valid());
    if (index_ == 0) {
      index_ = flist_->size();  // Marks as invalid
    } else {
      index_--;
    }
  }
  Slice key() const override {
    assert(Valid());
    return (*flist_)[index_]->largest.Encode();
  }
  Slice value() const override {
    assert(Valid());
    const TableMeta* f = (*flist_)[index_];
    EncodeFixed64(value_buf_, f->table_id);
    EncodeFixed64(value_buf_ + 8, f->file_number);
    value_buf_[16] = static_cast<char>(f->file_type);
    EncodeFixed64(value_buf_ + 17, f->offset);
    EncodeFixed64(value_buf_ + 25, f->size);
    return Slice(value_buf_, 33);
  }
  Status status() const override { return Status::OK(); }

 private:
  const InternalKeyComparator icmp_;
  const std::vector<TableMeta*>* const flist_;
  size_t index_;

  // Backing store for value().  Holds the encoded table location.
  mutable char value_buf_[33];
};

static bool DecodeTableLocation(const Slice& v, TableMeta* meta) {
  if (v.size() != 33) return false;
  meta->table_id = DecodeFixed64(v.data());
  meta->file_number = DecodeFixed64(v.data() + 8);
  meta->file_type = static_cast<FileType>(v.data()[16]);
  meta->offset = DecodeFixed64(v.data() + 17);
  meta->size = DecodeFixed64(v.data() + 25);
  return true;
}

static Iterator* GetTableIterator(void* arg, const ReadOptions& options,
                                  const Slice& table_value) {
  TableCache* cache = reinterpret_cast<TableCache*>(arg);
  TableMeta meta;
  if (!DecodeTableLocation(table_value, &meta)) {
    return NewErrorIterator(
        Status::Corruption("TableReader invoked with unexpected value"));
  }
  return cache->NewIterator(options, meta);
}

Iterator* Version::NewConcatenatingIterator(const ReadOptions& options,
                                            int level) const {
  return NewTwoLevelIterator(
      new LevelTableNumIterator(vset_->icmp_, &files_[level]),
      &GetTableIterator, vset_->table_cache_, options);
}

void Version::AddIterators(const ReadOptions& options,
                           std::vector<Iterator*>* iters) {
  for (int level = 0; level < static_cast<int>(files_.size()); level++) {
    if (files_[level].empty()) continue;
    if (LevelMayOverlap(level)) {
      // Tables may overlap each other: merge them all individually.
      for (TableMeta* f : files_[level]) {
        iters->push_back(vset_->table_cache_->NewIterator(options, *f));
      }
    } else {
      // Disjoint level: lazily open tables through a concatenating
      // iterator.
      iters->push_back(NewConcatenatingIterator(options, level));
    }
  }
}

// Callback from TableCache::Get()
namespace {
enum SaverState {
  kNotFound,
  kFound,
  kDeleted,
  kCorrupt,
};
struct Saver {
  SaverState state;
  const Comparator* ucmp;
  Slice user_key;
  std::string* value;
};
}  // namespace

static void SaveValue(void* arg, const Slice& ikey, const Slice& v) {
  Saver* s = reinterpret_cast<Saver*>(arg);
  ParsedInternalKey parsed_key;
  if (!ParseInternalKey(ikey, &parsed_key)) {
    s->state = kCorrupt;
  } else {
    if (s->ucmp->Compare(parsed_key.user_key, s->user_key) == 0) {
      s->state = (parsed_key.type == kTypeValue) ? kFound : kDeleted;
      if (s->state == kFound) {
        s->value->assign(v.data(), v.size());
      }
    }
  }
}

static bool NewestFirst(TableMeta* a, TableMeta* b) {
  return a->table_id > b->table_id;
}

void Version::ForEachOverlapping(Slice user_key, Slice internal_key, void* arg,
                                 bool (*func)(void*, int, TableMeta*)) {
  const Comparator* ucmp = vset_->icmp_.user_comparator();

  std::vector<TableMeta*> tmp;
  for (int level = 0; level < static_cast<int>(files_.size()); level++) {
    size_t num_files = files_[level].size();
    if (num_files == 0) continue;

    if (LevelMayOverlap(level)) {
      // Search all tables whose range contains user_key, newest first.
      tmp.clear();
      tmp.reserve(num_files);
      for (TableMeta* f : files_[level]) {
        if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
            ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
          tmp.push_back(f);
        }
      }
      if (tmp.empty()) continue;
      std::sort(tmp.begin(), tmp.end(), NewestFirst);
      for (TableMeta* f : tmp) {
        if (!(*func)(arg, level, f)) {
          return;
        }
      }
    } else {
      // Binary search to find earliest index whose largest key >=
      // internal_key.
      uint32_t index = FindTable(vset_->icmp_, files_[level], internal_key);
      if (index < num_files) {
        TableMeta* f = files_[level][index];
        if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) {
          // All of "f" is past any data for user_key
        } else {
          if (!(*func)(arg, level, f)) {
            return;
          }
        }
      }
    }
  }
}

Status Version::Get(const ReadOptions& options, const LookupKey& k,
                    std::string* value, GetStats* stats) {
  stats->seek_file = nullptr;
  stats->seek_file_level = -1;

  struct State {
    Saver saver;
    GetStats* stats;
    const ReadOptions* options;
    Slice ikey;
    TableMeta* last_file_read;
    int last_file_read_level;

    VersionSet* vset;
    Status s;
    bool found;

    static bool Match(void* arg, int level, TableMeta* f) {
      State* state = reinterpret_cast<State*>(arg);

      if (state->stats->seek_file == nullptr &&
          state->last_file_read != nullptr) {
        // We have had more than one seek for this read.  Charge the 1st
        // table.
        state->stats->seek_file = state->last_file_read;
        state->stats->seek_file_level = state->last_file_read_level;
      }

      state->last_file_read = f;
      state->last_file_read_level = level;

      state->s = state->vset->table_cache()->Get(*state->options, *f,
                                                 state->ikey, &state->saver,
                                                 SaveValue);
      if (!state->s.ok()) {
        state->found = true;
        return false;
      }
      switch (state->saver.state) {
        case kNotFound:
          return true;  // Keep searching in other files
        case kFound:
          state->found = true;
          return false;
        case kDeleted:
          return false;
        case kCorrupt:
          state->s =
              Status::Corruption("corrupted key for ", state->saver.user_key);
          state->found = true;
          return false;
      }

      // Not reached.  Added to avoid false compilation warnings of
      // "control reaches end of non-void function".
      return false;
    }
  };

  State state;
  state.found = false;
  state.stats = stats;
  state.last_file_read = nullptr;
  state.last_file_read_level = -1;

  state.options = &options;
  state.ikey = k.internal_key();
  state.vset = vset_;

  state.saver.state = kNotFound;
  state.saver.ucmp = vset_->icmp_.user_comparator();
  state.saver.user_key = k.user_key();
  state.saver.value = value;

  ForEachOverlapping(state.saver.user_key, state.ikey, &state, &State::Match);

  if (!state.found) {
    return Status::NotFound(Slice());
  }
  return state.s.ok() && state.saver.state == kDeleted
             ? Status::NotFound(Slice())
             : state.s;
}

void Version::MultiGet(const ReadOptions& options, MultiGetItem* items,
                       size_t n) {
  // One candidate table (level, file) a key may have to consult, in the
  // exact order ForEachOverlapping would visit it for Get().
  struct Cand {
    int level;
    TableMeta* f;
  };
  struct KeyState {
    Saver saver;
    MultiGetItem* item = nullptr;
    Slice ikey;
    std::vector<Cand> cands;
    size_t cursor = 0;  // next candidate to consult
    TableMeta* last_file_read = nullptr;
    int last_file_read_level = -1;
    Status s;
    bool found = false;
    bool resolved = false;
    // Parked read state for the current round (pin != nullptr while a
    // batched block read is in flight for this key).
    Table* table = nullptr;
    Cache::Handle* pin = nullptr;
    Table::GetContext ctx;
  };

  struct Collector {
    static bool Collect(void* arg, int level, TableMeta* f) {
      reinterpret_cast<std::vector<Cand>*>(arg)->push_back(Cand{level, f});
      return true;
    }
  };

  // Apply the outcome of one table consult, mirroring Get()'s
  // State::Match switch.  Leaves `resolved` false on kNotFound so the
  // key moves on to its next candidate.
  auto interpret = [](KeyState& ks, const Status& s) {
    if (!s.ok()) {
      ks.s = s;
      ks.found = true;
      ks.resolved = true;
      return;
    }
    switch (ks.saver.state) {
      case kNotFound:
        break;  // keep searching in other files
      case kFound:
        ks.found = true;
        ks.resolved = true;
        break;
      case kDeleted:
        ks.resolved = true;  // found stays false -> NotFound
        break;
      case kCorrupt:
        ks.s = Status::Corruption("corrupted key for ", ks.saver.user_key);
        ks.found = true;
        ks.resolved = true;
        break;
    }
  };

  std::vector<KeyState> keys(n);
  for (size_t i = 0; i < n; i++) {
    KeyState& ks = keys[i];
    ks.item = &items[i];
    ks.item->stats.seek_file = nullptr;
    ks.item->stats.seek_file_level = -1;
    ks.ikey = ks.item->key->internal_key();
    ks.saver.state = kNotFound;
    ks.saver.ucmp = vset_->icmp_.user_comparator();
    ks.saver.user_key = ks.item->key->user_key();
    ks.saver.value = ks.item->value;
    ForEachOverlapping(ks.saver.user_key, ks.ikey, &ks.cands,
                       &Collector::Collect);
  }

  ReadBatchOptions batch_opts;
  batch_opts.parallelism = vset_->options_->multiget_parallelism;
  batch_opts.allow_io_uring = vset_->options_->io_uring_enabled;

  // Advance a key through its candidates until it parks a cold block
  // read (pin held) or resolves.
  auto advance = [&](KeyState& ks) {
    while (!ks.resolved) {
      if (ks.cursor >= ks.cands.size()) {
        ks.resolved = true;  // exhausted: found stays false -> NotFound
        return;
      }
      const Cand c = ks.cands[ks.cursor++];

      if (ks.item->stats.seek_file == nullptr &&
          ks.last_file_read != nullptr) {
        // More than one seek for this read: charge the first table.
        ks.item->stats.seek_file = ks.last_file_read;
        ks.item->stats.seek_file_level = ks.last_file_read_level;
      }
      ks.last_file_read = c.f;
      ks.last_file_read_level = c.level;

      Status ps = vset_->table_cache_->PinTable(*c.f, &ks.table, &ks.pin);
      if (!ps.ok()) {
        ks.s = ps;
        ks.found = true;
        ks.resolved = true;
        return;
      }
      ks.ctx = Table::GetContext();
      ks.table->PrepareGet(options, ks.ikey, &ks.saver, SaveValue, &ks.ctx);
      if (!ks.ctx.done) {
        return;  // cold block parked; pin held until FinishGet
      }
      vset_->table_cache_->ReleasePin(ks.pin);
      ks.pin = nullptr;
      interpret(ks, ks.ctx.status);
    }
  };

  while (true) {
    for (size_t i = 0; i < n; i++) {
      if (!keys[i].resolved && keys[i].pin == nullptr) {
        advance(keys[i]);
      }
    }

    // Gather this round's parked block reads into one submission.
    std::vector<FileReadRequest> reqs;
    std::vector<KeyState*> parked;
    for (size_t i = 0; i < n; i++) {
      KeyState& ks = keys[i];
      if (ks.pin == nullptr) continue;
      FileReadRequest req;
      req.file = ks.ctx.file;
      req.offset = ks.ctx.block_offset;
      req.len = ks.ctx.block_len;
      req.scratch = ks.ctx.scratch.get();
      reqs.push_back(req);
      parked.push_back(&ks);
    }
    if (parked.empty()) break;  // every key resolved

    vset_->env_->ReadBatch(reqs.data(), reqs.size(), batch_opts);

    for (size_t j = 0; j < parked.size(); j++) {
      KeyState& ks = *parked[j];
      ks.ctx.read_result = reqs[j].result;
      ks.ctx.read_status = reqs[j].status;
      ks.table->FinishGet(options, &ks.ctx);
      vset_->table_cache_->ReleasePin(ks.pin);
      ks.pin = nullptr;
      interpret(ks, ks.ctx.status);
      // Unresolved keys (kNotFound) advance to their next candidate on
      // the next round.
    }
  }

  for (size_t i = 0; i < n; i++) {
    KeyState& ks = keys[i];
    if (!ks.found) {
      ks.item->status = Status::NotFound(Slice());
    } else {
      ks.item->status = ks.s.ok() && ks.saver.state == kDeleted
                            ? Status::NotFound(Slice())
                            : ks.s;
    }
  }
}

bool Version::UpdateStats(const GetStats& stats) {
  TableMeta* f = stats.seek_file;
  if (f != nullptr) {
    f->allowed_seeks--;
    if (f->allowed_seeks <= 0 && file_to_compact_ == nullptr) {
      file_to_compact_ = f;
      file_to_compact_level_ = stats.seek_file_level;
      return true;
    }
  }
  return false;
}

void Version::Ref() { ++refs_; }

void Version::Unref() {
  assert(this != &vset_->dummy_versions_);
  assert(refs_ >= 1);
  --refs_;
  if (refs_ == 0) {
    delete this;
  }
}

void Version::GetOverlappingInputs(int level, const InternalKey* begin,
                                   const InternalKey* end,
                                   std::vector<TableMeta*>* inputs) {
  assert(level >= 0);
  assert(level < static_cast<int>(files_.size()));
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) {
    user_begin = begin->user_key();
  }
  if (end != nullptr) {
    user_end = end->user_key();
  }
  const Comparator* user_cmp = vset_->icmp_.user_comparator();
  for (size_t i = 0; i < files_[level].size();) {
    TableMeta* f = files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // "f" is completely before specified range; skip it
    } else if (end != nullptr && user_cmp->Compare(file_start, user_end) > 0) {
      // "f" is completely after specified range; skip it
    } else {
      inputs->push_back(f);
      if (LevelMayOverlap(level)) {
        // Overlapping level: tables may overlap each other.  So check
        // if the newly added file has expanded the range.  If so,
        // restart search to stay transitively closed.
        if (begin != nullptr &&
            user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr &&
                   user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

bool Version::OverlapInLevel(int level, const Slice* smallest_user_key,
                             const Slice* largest_user_key) {
  return SomeFileOverlapsRange(vset_->icmp_, !LevelMayOverlap(level),
                               files_[level], smallest_user_key,
                               largest_user_key);
}

int Version::NumLevelRuns(int level) const {
  std::set<uint64_t> file_numbers;
  for (const TableMeta* f : files_[level]) {
    file_numbers.insert(f->file_number);
  }
  return static_cast<int>(file_numbers.size());
}

int64_t Version::LevelBytes(int level) const {
  return TotalTableSize(files_[level]);
}

std::string Version::DebugString() const {
  std::string r;
  for (int level = 0; level < static_cast<int>(files_.size()); level++) {
    // E.g.,
    //   --- level 1 ---
    //   17:123['a' .. 'd']
    //   20:43['e' .. 'g']
    r.append("--- level ");
    AppendNumberTo(&r, level);
    r.append(" ---\n");
    const std::vector<TableMeta*>& files = files_[level];
    for (size_t i = 0; i < files.size(); i++) {
      r.push_back(' ');
      AppendNumberTo(&r, files[i]->table_id);
      r.push_back('@');
      AppendNumberTo(&r, files[i]->file_number);
      r.push_back(':');
      AppendNumberTo(&r, files[i]->size);
      r.append("[");
      r.append(files[i]->smallest.DebugString());
      r.append(" .. ");
      r.append(files[i]->largest.DebugString());
      r.append("]\n");
    }
  }
  return r;
}

namespace {
// Forward declaration satisfied above.
}  // namespace

std::string Version::CheckInvariants() const {
  const InternalKeyComparator& icmp = vset_->icmp_;
  for (int level = 0; level < static_cast<int>(files_.size()); level++) {
    const std::vector<TableMeta*>& files = files_[level];
    for (size_t i = 0; i < files.size(); i++) {
      if (icmp.Compare(files[i]->smallest, files[i]->largest) > 0) {
        return "table with smallest > largest at level " +
               std::to_string(level);
      }
      if (i > 0) {
        if (icmp.Compare(files[i - 1]->smallest, files[i]->smallest) > 0) {
          return "tables out of order at level " + std::to_string(level);
        }
        if (!LevelMayOverlap(level) &&
            icmp.Compare(files[i - 1]->largest, files[i]->smallest) >= 0) {
          return "overlapping tables at disjoint level " +
                 std::to_string(level);
        }
      }
    }
  }
  return "";
}

// A helper class so we can efficiently apply a whole sequence of edits
// to a particular state without creating intermediate Versions that
// contain full copies of the intermediate state.
class VersionSet::Builder {
 private:
  // Helper to sort by v->files_[file_number].smallest
  struct BySmallestKey {
    const InternalKeyComparator* internal_comparator;

    bool operator()(TableMeta* f1, TableMeta* f2) const {
      int r = internal_comparator->Compare(f1->smallest, f2->smallest);
      if (r != 0) {
        return (r < 0);
      } else {
        // Break ties by table id
        return (f1->table_id < f2->table_id);
      }
    }
  };

  typedef std::set<TableMeta*, BySmallestKey> TableSet;
  struct LevelState {
    std::set<uint64_t> deleted_tables;
    TableSet* added_tables;
  };

  VersionSet* vset_;
  Version* base_;
  std::vector<LevelState> levels_;

 public:
  // Initialize a builder with the files from *base and other info from
  // *vset
  Builder(VersionSet* vset, Version* base)
      : vset_(vset), base_(base), levels_(vset->options()->num_levels) {
    base_->Ref();
    BySmallestKey cmp;
    cmp.internal_comparator = &vset_->icmp_;
    for (auto& level : levels_) {
      level.added_tables = new TableSet(cmp);
    }
  }

  ~Builder() {
    for (auto& level : levels_) {
      const TableSet* added = level.added_tables;
      std::vector<TableMeta*> to_unref;
      to_unref.reserve(added->size());
      for (TableMeta* f : *added) {
        to_unref.push_back(f);
      }
      delete added;
      for (TableMeta* f : to_unref) {
        f->refs--;
        if (f->refs <= 0) {
          delete f;
        }
      }
    }
    base_->Unref();
  }

  // Apply all of the edits in *edit to the current state.
  void Apply(const VersionEdit* edit) {
    // Update compaction pointers
    for (const auto& [level, key] : edit->compact_pointers_) {
      vset_->compact_pointer_[level] = key.Encode().ToString();
    }

    // Delete tables
    for (const auto& [level, table_id] : edit->deleted_tables_) {
      levels_[level].deleted_tables.insert(table_id);
    }

    // Add new tables
    for (const auto& [level, meta] : edit->new_tables_) {
      TableMeta* f = new TableMeta(meta);
      f->refs = 1;

      // We arrange to automatically compact this table after a certain
      // number of seeks (LevelDB heuristic: one seek costs ~ the merge
      // of 40 KB, so allow one seek per 16 KB of data before the table
      // earns its compaction).
      f->allowed_seeks = static_cast<int>((f->size / 16384U));
      if (f->allowed_seeks < 100) f->allowed_seeks = 100;

      levels_[level].deleted_tables.erase(f->table_id);
      levels_[level].added_tables->insert(f);
    }
  }

  // Save the current state in *v.
  void SaveTo(Version* v) {
    BySmallestKey cmp;
    cmp.internal_comparator = &vset_->icmp_;
    for (int level = 0; level < static_cast<int>(levels_.size()); level++) {
      // Merge the set of added tables with the set of pre-existing
      // tables, dropping any deleted tables.
      const std::vector<TableMeta*>& base_files = base_->files_[level];
      auto base_iter = base_files.begin();
      auto base_end = base_files.end();
      const TableSet* added_tables = levels_[level].added_tables;
      v->files_[level].reserve(base_files.size() + added_tables->size());
      for (TableMeta* added_file : *added_tables) {
        // Add all smaller files listed in base_
        for (auto bpos = std::upper_bound(base_iter, base_end, added_file, cmp);
             base_iter != bpos; ++base_iter) {
          MaybeAddTable(v, level, *base_iter);
        }
        MaybeAddTable(v, level, added_file);
      }

      // Add remaining base files
      for (; base_iter != base_end; ++base_iter) {
        MaybeAddTable(v, level, *base_iter);
      }

#ifndef NDEBUG
      // Make sure there is no overlap in levels that must be disjoint
      if (!v->LevelMayOverlap(level)) {
        for (size_t i = 1; i < v->files_[level].size(); i++) {
          const InternalKey& prev_end = v->files_[level][i - 1]->largest;
          const InternalKey& this_begin = v->files_[level][i]->smallest;
          if (vset_->icmp_.Compare(prev_end, this_begin) >= 0) {
            std::fprintf(stderr, "overlapping ranges in same level %s vs. %s\n",
                         prev_end.DebugString().c_str(),
                         this_begin.DebugString().c_str());
            std::abort();
          }
        }
      }
#endif
    }
  }

  void MaybeAddTable(Version* v, int level, TableMeta* f) {
    if (levels_[level].deleted_tables.count(f->table_id) > 0) {
      // Table is deleted: do nothing
    } else {
      std::vector<TableMeta*>* files = &v->files_[level];
      if (level > 0 && !files->empty() && !v->LevelMayOverlap(level)) {
        // Must not overlap
        assert(vset_->icmp_.Compare((*files)[files->size() - 1]->largest,
                                    f->smallest) < 0);
      }
      f->refs++;
      files->push_back(f);
    }
  }
};

VersionSet::VersionSet(const std::string& dbname, const Options* options,
                       TableCache* table_cache,
                       const InternalKeyComparator* cmp)
    : env_(options->env),
      dbname_(dbname),
      options_(options),
      table_cache_(table_cache),
      icmp_(*cmp),
      next_file_number_(2),
      manifest_file_number_(0),  // Filled by Recover()
      last_sequence_(0),
      log_number_(0),
      prev_log_number_(0),
      descriptor_file_(nullptr),
      descriptor_log_(nullptr),
      dummy_versions_(this),
      current_(nullptr),
      compact_pointer_(options->num_levels) {
  AppendVersion(new Version(this));
}

VersionSet::~VersionSet() {
  current_->Unref();
  assert(dummy_versions_.next_ == &dummy_versions_);  // List must be empty
  delete descriptor_log_;
  delete descriptor_file_;
}

void VersionSet::AppendVersion(Version* v) {
  // Make "v" current
  assert(v->refs_ == 0);
  assert(v != current_);
  if (current_ != nullptr) {
    current_->Unref();
  }
  current_ = v;
  v->Ref();

  // Append to linked list
  v->prev_ = dummy_versions_.prev_;
  v->next_ = &dummy_versions_;
  v->prev_->next_ = v;
  v->next_->prev_ = v;
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_);
    assert(edit->log_number_ < next_file_number_);
  } else {
    edit->SetLogNumber(log_number_);
  }

  if (!edit->has_prev_log_number_) {
    edit->SetPrevLogNumber(prev_log_number_);
  }

  edit->SetNextFile(next_file_number_);
  edit->SetLastSequence(last_sequence_);

  Version* v = new Version(this);
  {
    Builder builder(this, current_);
    builder.Apply(edit);
    builder.SaveTo(v);
  }
  Finalize(v);

  // Initialize new descriptor log file if necessary by creating a
  // temporary file that contains a snapshot of the current version.
  std::string new_manifest_file;
  Status s;
  if (descriptor_log_ == nullptr) {
    // No reason to unlock *mu here since we only hit this path in the
    // first call to LogAndApply (when opening the database).
    assert(descriptor_file_ == nullptr);
    new_manifest_file = DescriptorFileName(dbname_, manifest_file_number_);
    std::unique_ptr<WritableFile> df;
    s = env_->NewWritableFile(new_manifest_file, &df);
    if (s.ok()) {
      descriptor_file_ = df.release();
      descriptor_log_ = new log::Writer(descriptor_file_);
      s = WriteSnapshot(descriptor_log_);
    }
  }

  // Write new record to MANIFEST log: the commit mark.  The Sync() here
  // is the second data barrier of each compaction (Fig 3(b)).
  bool synced = false;
  if (s.ok()) {
    obs::SpanScope span(options_->tracer, "manifest_commit");
    span.AddArg("manifest", manifest_file_number_);
    std::string record;
    edit->EncodeTo(&record);
    span.AddArg("record_bytes", record.size());
    s = descriptor_log_->AddRecord(record);
    BOLT_SYNC_POINT("VersionSet::LogAndApply:BeforeManifestSync");
    if (s.ok()) {
      s = descriptor_file_->Sync();
      synced = s.ok();
    }
    BOLT_SYNC_POINT("VersionSet::LogAndApply:AfterManifestSync");
  }

  // If we just created a new descriptor file, install it by writing a
  // new CURRENT file that points to it.
  if (s.ok() && !new_manifest_file.empty()) {
    BOLT_SYNC_POINT("VersionSet::LogAndApply:BeforeCurrentSwap");
    s = SetCurrentFile(env_, dbname_, manifest_file_number_);
  }

  // Barrier attribution: every *successful* MANIFEST sync is charged
  // exactly once — committed if the edit installs, orphaned if a later
  // step (CURRENT swap) failed and the barrier bought no durable commit.
  if (synced && options_->metrics != nullptr) {
    options_->metrics->Add(s.ok() ? obs::kManifestBarriersCommitted
                                  : obs::kManifestBarriersOrphaned);
  }

  // Install the new version
  if (s.ok()) {
    AppendVersion(v);
    log_number_ = edit->log_number_;
    prev_log_number_ = edit->prev_log_number_;
  } else {
    // Roll back: the in-memory state still points at the old version,
    // and CURRENT still points at the last fully-synced MANIFEST, so
    // the old descriptor remains the durable truth.
    delete v;
    if (!new_manifest_file.empty()) {
      delete descriptor_log_;
      delete descriptor_file_;
      descriptor_log_ = nullptr;
      descriptor_file_ = nullptr;
      // Best-effort cleanup: CURRENT still names the old manifest, so a
      // leftover new manifest is garbage, not corruption.
      (void)env_->RemoveFile(new_manifest_file);
    } else {
      // The established descriptor stream may now end in a torn record;
      // appending more records after it would make recovery drop them
      // (the log reader stops at a corruption).  Discard the handle and
      // move to a fresh manifest number: the next successful
      // LogAndApply writes a full snapshot and swaps CURRENT
      // atomically.  Until then the old MANIFEST stays untouched on
      // disk (the caller latches bg_error_, which also blocks
      // RemoveObsoleteFiles from deleting it).
      delete descriptor_log_;
      delete descriptor_file_;
      descriptor_log_ = nullptr;
      descriptor_file_ = nullptr;
      manifest_file_number_ = NewFileNumber();
    }
  }

  return s;
}

Status VersionSet::Recover() {
  struct LogReporter : public log::Reader::Reporter {
    Status* status;
    void Corruption(size_t bytes, const Status& s) override {
      if (this->status->ok()) *this->status = s;
    }
  };

  // Read "CURRENT" file, which contains a pointer to the current
  // manifest file
  std::string current;
  Status s = ReadFileToString(env_, CurrentFileName(dbname_), &current);
  if (!s.ok()) {
    return s;
  }
  if (current.empty() || current[current.size() - 1] != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current.resize(current.size() - 1);

  std::string dscname = dbname_ + "/" + current;
  std::unique_ptr<SequentialFile> file;
  s = env_->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent file",
                                s.ToString());
    }
    return s;
  }

  bool have_log_number = false;
  bool have_prev_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t last_sequence = 0;
  uint64_t log_number = 0;
  uint64_t prev_log_number = 0;
  Builder builder(this, current_);

  {
    LogReporter reporter;
    reporter.status = &s;
    log::Reader reader(file.get(), &reporter, true /*checksum*/);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok()) {
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (s.ok()) {
        if (edit.has_comparator_ &&
            edit.comparator_ != icmp_.user_comparator()->Name()) {
          s = Status::InvalidArgument(
              edit.comparator_ + " does not match existing comparator ",
              icmp_.user_comparator()->Name());
        }
      }

      if (s.ok()) {
        builder.Apply(&edit);
      }

      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }

      if (edit.has_prev_log_number_) {
        prev_log_number = edit.prev_log_number_;
        have_prev_log_number = true;
      }

      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }

      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
    }
  }
  file.reset();

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no meta-nextfile entry in descriptor");
    } else if (!have_log_number) {
      s = Status::Corruption("no meta-lognumber entry in descriptor");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence-number entry in descriptor");
    }

    if (!have_prev_log_number) {
      prev_log_number = 0;
    }

    MarkFileNumberUsed(prev_log_number);
    MarkFileNumberUsed(log_number);
  }

  if (s.ok()) {
    Version* v = new Version(this);
    builder.SaveTo(v);
    // Install recovered version
    Finalize(v);
    AppendVersion(v);
    manifest_file_number_ = next_file;
    next_file_number_ = next_file + 1;
    last_sequence_ = last_sequence;
    log_number_ = log_number;
    prev_log_number_ = prev_log_number;
  }

  return s;
}

void VersionSet::MarkFileNumberUsed(uint64_t number) {
  if (next_file_number_ <= number) {
    next_file_number_ = number + 1;
  }
}

void VersionSet::Finalize(Version* v) {
  // Precomputed best level for next compaction
  int best_level = -1;
  double best_score = -1;
  v->compaction_candidates_.clear();

  for (int level = 0; level < options_->num_levels - 1; level++) {
    double score;
    if (level == 0) {
      // We treat level-0 specially by bounding the number of runs
      // instead of number of bytes for two reasons:
      //
      // (1) With larger write-buffer sizes, it is nice not to do too
      // many level-0 compactions.
      //
      // (2) The files in level-0 are merged on every read and
      // therefore we wish to avoid too many files when the individual
      // file size is small (perhaps because of a small write-buffer
      // setting, or very high compression ratios, or lots of
      // overwrites/deletions).
      score = v->NumLevelRuns(0) /
              static_cast<double>(options_->l0_compaction_trigger);
    } else {
      // Compute the ratio of current size to size limit.
      const uint64_t level_bytes = TotalTableSize(v->files_[level]);
      score = static_cast<double>(level_bytes) /
              MaxBytesForLevelImpl(options_, level);
    }

    if (score > best_score) {
      best_level = level;
      best_score = score;
    }
    if (score >= 1) {
      v->compaction_candidates_.emplace_back(score, level);
    }
  }

  std::sort(v->compaction_candidates_.begin(), v->compaction_candidates_.end(),
            [](const std::pair<double, int>& a,
               const std::pair<double, int>& b) { return a.first > b.first; });
  v->compaction_level_ = best_level;
  v->compaction_score_ = best_score;
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  // Save metadata
  VersionEdit edit;
  edit.SetComparatorName(icmp_.user_comparator()->Name());

  // Save compaction pointers
  for (int level = 0; level < options_->num_levels; level++) {
    if (!compact_pointer_[level].empty()) {
      InternalKey key;
      key.DecodeFrom(compact_pointer_[level]);
      edit.SetCompactPointer(level, key);
    }
  }

  // Save tables
  for (int level = 0; level < options_->num_levels; level++) {
    for (TableMeta* f : current_->files_[level]) {
      edit.AddTable(level, *f);
    }
  }

  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(record);
}

const char* VersionSet::LevelSummary(LevelSummaryStorage* scratch) const {
  int len = snprintf(scratch->buffer, sizeof(scratch->buffer), "tables[ ");
  for (int level = 0; level < options_->num_levels; level++) {
    len += snprintf(scratch->buffer + len, sizeof(scratch->buffer) - len,
                    "%d ", current_->NumTables(level));
    if (len >= static_cast<int>(sizeof(scratch->buffer)) - 10) break;
  }
  snprintf(scratch->buffer + len, sizeof(scratch->buffer) - len, "]");
  return scratch->buffer;
}

void VersionSet::AddLiveTables(std::set<uint64_t>* live_table_ids,
                               std::set<std::pair<uint64_t, int>>* live_files) {
  for (Version* v = dummy_versions_.next_; v != &dummy_versions_;
       v = v->next_) {
    for (int level = 0; level < options_->num_levels; level++) {
      for (const TableMeta* f : v->files_[level]) {
        if (live_table_ids != nullptr) live_table_ids->insert(f->table_id);
        if (live_files != nullptr) {
          live_files->insert({f->file_number, f->file_type});
        }
      }
    }
  }
}

int64_t VersionSet::MaxNextLevelOverlappingBytes() {
  int64_t result = 0;
  std::vector<TableMeta*> overlaps;
  for (int level = 1; level < options_->num_levels - 1; level++) {
    for (TableMeta* f : current_->files_[level]) {
      current_->GetOverlappingInputs(level + 1, &f->smallest, &f->largest,
                                     &overlaps);
      const int64_t sum = TotalTableSize(overlaps);
      if (sum > result) {
        result = sum;
      }
    }
  }
  return result;
}

// Stores the minimal range that covers all entries in inputs in
// *smallest, *largest.  REQUIRES: inputs is not empty.
void VersionSet::GetRange(const std::vector<TableMeta*>& inputs,
                          InternalKey* smallest, InternalKey* largest) {
  assert(!inputs.empty());
  smallest->Clear();
  largest->Clear();
  for (size_t i = 0; i < inputs.size(); i++) {
    TableMeta* f = inputs[i];
    if (i == 0) {
      *smallest = f->smallest;
      *largest = f->largest;
    } else {
      if (icmp_.Compare(f->smallest, *smallest) < 0) {
        *smallest = f->smallest;
      }
      if (icmp_.Compare(f->largest, *largest) > 0) {
        *largest = f->largest;
      }
    }
  }
}

void VersionSet::GetRange2(const std::vector<TableMeta*>& inputs1,
                           const std::vector<TableMeta*>& inputs2,
                           InternalKey* smallest, InternalKey* largest) {
  std::vector<TableMeta*> all = inputs1;
  all.insert(all.end(), inputs2.begin(), inputs2.end());
  GetRange(all, smallest, largest);
}

Iterator* VersionSet::MakeInputIterator(Compaction* c) {
  ReadOptions options;
  options.verify_checksums = options_->paranoid_checks;
  options.fill_cache = false;
  // Compaction input readahead: each input table's iterator prefetches
  // the next N data blocks into the block cache with one batched read
  // per refill (Table::NewIterator wraps in a ReadaheadIterator).
  options.readahead_blocks = options_->compaction_readahead_blocks;

  // Level-0 tables, and every table in FLSM mode, may overlap each
  // other, so they need their own iterators.  Disjoint input sets can
  // share one concatenating iterator.
  const bool overlap0 = (c->level() == 0) || options_->flsm_mode;
  const bool overlap1 = options_->flsm_mode;
  const int space = (overlap0 ? c->num_input_files(0) : 1) +
                    (overlap1 ? c->num_input_files(1) : 1);
  Iterator** list = new Iterator*[space];
  int num = 0;
  for (int which = 0; which < 2; which++) {
    if (c->inputs_[which].empty()) continue;
    const bool overlapping = (which == 0) ? overlap0 : overlap1;
    if (overlapping) {
      for (TableMeta* f : c->inputs_[which]) {
        list[num++] = table_cache_->NewIterator(options, *f);
      }
    } else {
      // Create concatenating iterator for the files from this level
      list[num++] = NewTwoLevelIterator(
          new Version::LevelTableNumIterator(icmp_, &c->inputs_[which]),
          &GetTableIterator, table_cache_, options);
    }
  }
  assert(num <= space);
  Iterator* result = NewMergingIterator(&icmp_, list, num);
  delete[] list;
  return result;
}

namespace {

// Returns total size (bytes) of tables in "next_level" overlapping "f".
int64_t OverlapBytes(const InternalKeyComparator& icmp, const TableMeta* f,
                     const std::vector<TableMeta*>& next_level) {
  const Comparator* ucmp = icmp.user_comparator();
  int64_t sum = 0;
  for (const TableMeta* g : next_level) {
    if (ucmp->Compare(g->largest.user_key(), f->smallest.user_key()) < 0 ||
        ucmp->Compare(g->smallest.user_key(), f->largest.user_key()) > 0) {
      continue;
    }
    sum += g->size;
  }
  return sum;
}

}  // namespace

void VersionSet::PickVictims(Version* v, int level,
                             const std::set<uint64_t>* exclude_tables,
                             std::vector<TableMeta*>* victims) {
  victims->clear();
  const std::vector<TableMeta*>& files = v->files_[level];
  if (files.empty()) return;
  const bool excluding =
      exclude_tables != nullptr && !exclude_tables->empty();
  auto is_excluded = [&](const TableMeta* f) {
    return excluding && exclude_tables->count(f->table_id) != 0;
  };

  // The victim budget: group compaction (+GC) moves about
  // group_compaction_bytes per compaction; otherwise one table.  FLSM
  // compactions batch a couple of table-sizes worth of (overlapping)
  // victim tables.
  uint64_t budget = options_->group_compaction_bytes;
  if (options_->flsm_mode && level > 0) {
    budget = std::max<uint64_t>(budget, 2 * options_->max_file_size);
  }

  if (level > 0 && !options_->flsm_mode && options_->settled_compaction) {
    // Settled compaction (+STL): choose the victims with minimal
    // next-level overlap; zero-overlap victims will be promoted by a
    // metadata-only edit in SetupOtherInputs().
    std::vector<std::pair<int64_t, TableMeta*>> ranked;
    ranked.reserve(files.size());
    for (TableMeta* f : files) {
      ranked.emplace_back(OverlapBytes(icmp_, f, v->files_[level + 1]), f);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second->table_id < b.second->table_id;
              });
    uint64_t total = 0;
    std::vector<TableMeta*> scratch;
    for (const auto& [overlap, f] : ranked) {
      if (is_excluded(f)) continue;
      // This picker has no cursor — it would re-pick the in-flight
      // job's victims forever — so a victim whose next-level overlap is
      // already being compacted must be skipped here, not merely
      // rejected later.
      if (excluding && overlap > 0) {
        scratch.clear();
        v->GetOverlappingInputs(level + 1, &f->smallest, &f->largest,
                                &scratch);
        bool conflict = false;
        for (TableMeta* g : scratch) {
          if (is_excluded(g)) {
            conflict = true;
            break;
          }
        }
        if (conflict) continue;
      }
      victims->push_back(f);
      total += f->size;
      if (total >= std::max<uint64_t>(budget, 1)) break;
      if (budget == 0) break;  // single victim
    }
    // Victims are scattered across the keyspace; restore key order so
    // downstream input iterators see a sorted, disjoint sequence.
    std::sort(victims->begin(), victims->end(),
              [this](TableMeta* a, TableMeta* b) {
                return icmp_.Compare(a->smallest, b->smallest) < 0;
              });
    return;
  }

  if (level > 0 && !options_->flsm_mode &&
      options_->victim_policy == VictimPolicy::kMinOverlap) {
    // HyperLevelDB-style: pick the seed victim with the smallest
    // overlap-to-size ratio, then extend contiguously (in key order, no
    // wrap: input sets must stay key-sorted) up to the group budget.
    size_t best = 0;
    double best_ratio = -1;
    for (size_t i = 0; i < files.size(); i++) {
      if (is_excluded(files[i])) continue;
      const double ratio =
          static_cast<double>(
              OverlapBytes(icmp_, files[i], v->files_[level + 1])) /
          static_cast<double>(files[i]->size);
      if (best_ratio < 0 || ratio < best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best_ratio < 0) return;  // every table is in flight
    uint64_t total = 0;
    for (size_t i = best; i < files.size(); i++) {
      if (is_excluded(files[i])) break;  // keep the run contiguous
      victims->push_back(files[i]);
      total += files[i]->size;
      if (budget == 0 || total >= budget) break;
    }
    return;
  }

  // Round-robin cursor (LevelDB compact_pointer), extended to take a
  // contiguous group of tables when group compaction is enabled.  The
  // run never wraps within one compaction — victims must remain a
  // key-sorted, contiguous slice; the cursor wraps on the next pick.
  size_t start = 0;
  if (!compact_pointer_[level].empty()) {
    bool found = false;
    for (size_t i = 0; i < files.size(); i++) {
      if (icmp_.Compare(files[i]->largest.Encode(),
                        compact_pointer_[level]) > 0) {
        start = i;
        found = true;
        break;
      }
    }
    if (!found) start = 0;  // wrap to the beginning of the level
  }
  // Skip past in-flight tables (the cursor may still point into a range
  // another job is compacting), then take a contiguous run.
  while (start < files.size() && is_excluded(files[start])) start++;
  uint64_t total = 0;
  for (size_t i = start; i < files.size(); i++) {
    if (is_excluded(files[i])) break;  // keep the run contiguous
    victims->push_back(files[i]);
    total += files[i]->size;
    if (budget == 0 || total >= budget) break;
    if (level == 0) break;  // L0 victims grow via overlap expansion instead
  }
}

namespace {

// Does the fully-set-up compaction touch any excluded table id?
bool CompactionTouches(const Compaction* c,
                       const std::set<uint64_t>* exclude_tables) {
  if (exclude_tables == nullptr || exclude_tables->empty()) return false;
  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      if (exclude_tables->count(c->input(which, i)->table_id) != 0) {
        return true;
      }
    }
  }
  for (const TableMeta* f : c->promoted()) {
    if (exclude_tables->count(f->table_id) != 0) return true;
  }
  return false;
}

}  // namespace

Compaction* VersionSet::PickCompactionAtLevel(
    int level, const std::set<uint64_t>* exclude_tables) {
  assert(level >= 0);
  assert(level + 1 < options_->num_levels);
  Compaction* c = new Compaction(options_, level);
  PickVictims(current_, level, exclude_tables, &c->inputs_[0]);
  if (c->inputs_[0].empty()) {
    delete c;
    return nullptr;
  }

  c->input_version_ = current_;
  c->input_version_->Ref();

  // Tables in level-0 (or any level in FLSM mode) may overlap each
  // other, so pick up all overlapping ones.
  if (current_->LevelMayOverlap(level)) {
    InternalKey smallest, largest;
    GetRange(c->inputs_[0], &smallest, &largest);
    // Note that the next call will discard the file we placed in
    // c->inputs_[0] earlier and replace it with an overlapping set
    // which will include the picked file.
    current_->GetOverlappingInputs(level, &smallest, &largest,
                                   &c->inputs_[0]);
    assert(!c->inputs_[0].empty());
  }

  SetupOtherInputs(c);

  if (CompactionTouches(c, exclude_tables)) {
    // The discarded pick still advanced compact_pointer_[level], so the
    // next attempt at this level rotates to a different key range — the
    // cursor is how repeated picks eventually find disjoint work.
    delete c;
    return nullptr;
  }
  return c;
}

Compaction* VersionSet::PickCompaction(
    const std::set<uint64_t>* exclude_tables) {
  const bool excluding =
      exclude_tables != nullptr && !exclude_tables->empty();

  // We prefer compactions triggered by too much data in a level over
  // the compactions triggered by seeks.
  if (current_->compaction_score_ >= 1) {
    if (!excluding) {
      return PickCompactionAtLevel(current_->compaction_level_, nullptr);
    }
    // Walk every deserving level, best score first: if the top-scoring
    // level's pick overlaps an in-flight compaction, a lower-scoring
    // level may still have disjoint work.
    for (const auto& candidate : current_->compaction_candidates_) {
      Compaction* c = PickCompactionAtLevel(candidate.second, exclude_tables);
      if (c != nullptr) return c;
    }
    return nullptr;  // every deserving level conflicts right now
  }

  if (current_->file_to_compact_ != nullptr && options_->seek_compaction) {
    const int level = current_->file_to_compact_level_;
    Compaction* c = new Compaction(options_, level);
    c->inputs_[0].push_back(current_->file_to_compact_);
    c->input_version_ = current_;
    c->input_version_->Ref();
    if (current_->LevelMayOverlap(level)) {
      InternalKey smallest, largest;
      GetRange(c->inputs_[0], &smallest, &largest);
      current_->GetOverlappingInputs(level, &smallest, &largest,
                                     &c->inputs_[0]);
      assert(!c->inputs_[0].empty());
    }
    SetupOtherInputs(c);
    if (CompactionTouches(c, exclude_tables)) {
      delete c;
      return nullptr;
    }
    return c;
  }

  return nullptr;
}

void VersionSet::SetupOtherInputs(Compaction* c) {
  const int level = c->level();
  InternalKey smallest, largest;
  GetRange(c->inputs_[0], &smallest, &largest);

  const bool settled =
      options_->settled_compaction && level > 0 && !options_->flsm_mode;

  // FLSM (PebblesDB) compactions do not merge with resident next-level
  // tables: outputs are simply appended to the next level, which is
  // allowed to overlap.  Only the bottom-most level merges in place to
  // bound its overlap.
  const bool merge_with_next_level =
      !options_->flsm_mode || (level + 2 >= options_->num_levels);
  if (merge_with_next_level && !settled) {
    current_->GetOverlappingInputs(level + 1, &smallest, &largest,
                                   &c->inputs_[1]);
  }

  // Settled compaction (+STL): victims are scattered (minimal-overlap
  // selection), so inputs_[1] is the *union of per-victim overlaps*, not
  // the hull overlap -- next-level tables in the gaps between victims
  // stay in place.  Victims with no next-level overlap at all are
  // promoted by a metadata-only edit instead of being rewritten.
  if (settled) {
    std::set<uint64_t> overlap_ids;
    std::vector<TableMeta*> merged_victims;
    std::vector<TableMeta*> overlap_union;
    std::vector<TableMeta*> per_victim;
    for (TableMeta* f : c->inputs_[0]) {
      current_->GetOverlappingInputs(level + 1, &f->smallest, &f->largest,
                                     &per_victim);
      if (per_victim.empty()) {
        c->promoted_.push_back(f);
      } else {
        merged_victims.push_back(f);
        for (TableMeta* g : per_victim) {
          if (overlap_ids.insert(g->table_id).second) {
            overlap_union.push_back(g);
          }
        }
      }
    }
    c->inputs_[0].swap(merged_victims);
    std::sort(overlap_union.begin(), overlap_union.end(),
              [this](TableMeta* a, TableMeta* b) {
                return icmp_.Compare(a->smallest, b->smallest) < 0;
              });
    c->inputs_[1].swap(overlap_union);

    // Cut merge outputs so no output table ever spans (a) a promoted
    // victim's range or (b) a resident next-level table sitting in a gap
    // between merged victims; either would break level+1 disjointness.
    for (const TableMeta* f : c->promoted_) {
      c->stop_keys_.push_back(f->smallest);
    }
    if (!c->inputs_[0].empty()) {
      InternalKey hull_start, hull_limit;
      GetRange2(c->inputs_[0], c->inputs_[1], &hull_start, &hull_limit);
      std::vector<TableMeta*> hull_residents;
      current_->GetOverlappingInputs(level + 1, &hull_start, &hull_limit,
                                     &hull_residents);
      for (TableMeta* g : hull_residents) {
        if (overlap_ids.count(g->table_id) == 0) {
          c->stop_keys_.push_back(g->smallest);
        }
      }
    }
    std::sort(c->stop_keys_.begin(), c->stop_keys_.end(),
              [this](const InternalKey& a, const InternalKey& b) {
                return icmp_.Compare(a, b) < 0;
              });
  }

  // Compute the set of grandparent files that overlap this compaction
  // (parent == level+1; grandparent == level+2)
  {
    std::vector<TableMeta*> all = c->inputs_[0];
    all.insert(all.end(), c->promoted_.begin(), c->promoted_.end());
    if (!all.empty() && level + 2 < options_->num_levels) {
      InternalKey all_start, all_limit;
      GetRange2(all, c->inputs_[1], &all_start, &all_limit);
      current_->GetOverlappingInputs(level + 2, &all_start, &all_limit,
                                     &c->grandparents_);
    }

    // Update the place where we will do the next compaction for this
    // level.  We update this immediately instead of waiting for the
    // VersionEdit to be applied so that if the compaction fails, we
    // will try a different key range next time.
    if (!all.empty()) {
      InternalKey all_start, all_limit;
      GetRange(all, &all_start, &all_limit);
      compact_pointer_[level] = all_limit.Encode().ToString();
      c->edit_.SetCompactPointer(level, all_limit);
    }
  }
}

Compaction* VersionSet::CompactRange(int level, const InternalKey* begin,
                                     const InternalKey* end) {
  std::vector<TableMeta*> inputs;
  current_->GetOverlappingInputs(level, begin, end, &inputs);
  if (inputs.empty()) {
    return nullptr;
  }

  // Avoid compacting too much in one shot in case the range is large.
  const uint64_t limit = 4 * MaxBytesForLevel(1);
  uint64_t total = 0;
  for (size_t i = 0; i < inputs.size(); i++) {
    uint64_t s = inputs[i]->size;
    total += s;
    if (total >= limit) {
      inputs.resize(i + 1);
      break;
    }
  }

  Compaction* c = new Compaction(options_, level);
  c->input_version_ = current_;
  c->input_version_->Ref();
  c->inputs_[0] = inputs;
  SetupOtherInputs(c);
  return c;
}

Compaction::Compaction(const Options* options, int level)
    : level_(level),
      max_output_table_bytes_(TargetTableSize(options)),
      flsm_(options->flsm_mode),
      input_version_(nullptr) {
  default_iter_state_.level_ptrs.assign(options->num_levels, 0);
}

Compaction::IterState Compaction::NewIterState() const {
  IterState state;
  state.level_ptrs.assign(default_iter_state_.level_ptrs.size(), 0);
  return state;
}

Compaction::~Compaction() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
  }
}

bool Compaction::IsTrivialMove() const {
  const VersionSet* vset = input_version_->vset_;
  // Avoid a move if there is lots of overlapping grandparent data.
  // Otherwise, the move could create a parent table that will require
  // a very expensive merge later on.  (Settled compaction generalizes
  // this via promoted(); trivial moves remain for stock configurations.)
  return (num_input_files(0) == 1 && num_input_files(1) == 0 &&
          promoted_.empty() && !flsm_ &&
          TotalTableSize(grandparents_) <=
              MaxGrandParentOverlapBytes(vset->options_));
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    for (size_t i = 0; i < inputs_[which].size(); i++) {
      edit->RemoveTable(level_ + which, inputs_[which][i]->table_id);
    }
  }
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key, IterState* state) {
  if (flsm_) {
    // Overlapping levels make the sorted-walk below invalid; be
    // conservative (keep deletion markers).
    return false;
  }
  // Maybe use binary search to find right entry instead of linear search?
  const Comparator* user_cmp =
      input_version_->vset_->icmp_.user_comparator();
  const auto& files = input_version_->files_;
  for (int lvl = level_ + 2; lvl < static_cast<int>(files.size()); lvl++) {
    while (state->level_ptrs[lvl] < files[lvl].size()) {
      TableMeta* f = files[lvl][state->level_ptrs[lvl]];
      if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
        // We've advanced far enough
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0) {
          // Key falls in this file's range, so definitely not base level
          return false;
        }
        break;
      }
      state->level_ptrs[lvl]++;
    }
  }
  return true;
}

bool Compaction::ShouldStopBefore(const Slice& internal_key,
                                  IterState* state) {
  const VersionSet* vset = input_version_->vset_;
  const InternalKeyComparator* icmp = &vset->icmp_;

  // Settled-compaction boundary: never let an output span a promoted
  // table's range.
  bool crossed_boundary = false;
  while (state->stop_key_index < stop_keys_.size() &&
         icmp->Compare(internal_key,
                       stop_keys_[state->stop_key_index].Encode()) >= 0) {
    state->stop_key_index++;
    crossed_boundary = true;
  }
  if (crossed_boundary && state->seen_key) {
    state->overlapped_bytes = 0;
    return true;
  }

  // Scan to find the earliest grandparent file that contains key.
  while (state->grandparent_index < grandparents_.size() &&
         icmp->Compare(
             internal_key,
             grandparents_[state->grandparent_index]->largest.Encode()) > 0) {
    if (state->seen_key) {
      state->overlapped_bytes += grandparents_[state->grandparent_index]->size;
    }
    state->grandparent_index++;
  }
  state->seen_key = true;

  if (state->overlapped_bytes > MaxGrandParentOverlapBytes(vset->options_)) {
    // Too much overlap for current output; start new output
    state->overlapped_bytes = 0;
    return true;
  }
  return false;
}

void Compaction::ReleaseInputs() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
    input_version_ = nullptr;
  }
}

int64_t Compaction::NumInputBytes(int which) const {
  return TotalTableSize(inputs_[which]);
}

}  // namespace bolt
