// Internal key format: user_key ++ fixed64(sequence << 8 | type).
// Ordering: user keys ascending, then sequence numbers *descending*, so a
// scan sees the newest version of each user key first.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "db/options.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/filter_policy.h"
#include "util/slice.h"

namespace bolt {

class InternalKey;

// Value types encoded as the last component of internal keys.
// DO NOT CHANGE THESE ENUM VALUES: they are embedded in the on-disk
// data structures.
enum ValueType { kTypeDeletion = 0x0, kTypeValue = 0x1 };

// kValueTypeForSeek defines the ValueType that should be passed when
// constructing a ParsedInternalKey object for seeking to a particular
// sequence number (since we sort sequence numbers in decreasing order
// and the value type is embedded as the low 8 bits in the sequence
// number in internal keys, we need to use the highest-numbered
// ValueType, not the lowest).
static const ValueType kValueTypeForSeek = kTypeValue;

typedef uint64_t SequenceNumber;

// We leave eight bits empty at the bottom so a type and sequence#
// can be packed together into 64-bits.
static const SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;

  ParsedInternalKey() {}  // Intentionally left uninitialized (for speed)
  ParsedInternalKey(const Slice& u, const SequenceNumber& seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

// Return the length of the encoding of "key".
inline size_t InternalKeyEncodingLength(const ParsedInternalKey& key) {
  return key.user_key.size() + 8;
}

inline uint64_t PackSequenceAndType(uint64_t seq, ValueType t) {
  assert(seq <= kMaxSequenceNumber);
  return (seq << 8) | t;
}

// Append the serialization of "key" to *result.
void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

// Attempt to parse an internal key from "internal_key".  On success,
// stores the parsed data in "*result", and returns true.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

// Returns the user key portion of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8) >> 8;
}

// A comparator for internal keys that uses a specified comparator for
// the user key portion and breaks ties by decreasing sequence number.
class InternalKeyComparator : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* c) : user_comparator_(c) {}
  const char* Name() const override;
  int Compare(const Slice& a, const Slice& b) const override;
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

  int Compare(const InternalKey& a, const InternalKey& b) const;

 private:
  const Comparator* user_comparator_;
};

// Filter policy wrapper that converts from internal keys to user keys.
class InternalFilterPolicy : public FilterPolicy {
 public:
  explicit InternalFilterPolicy(const FilterPolicy* p) : user_policy_(p) {}
  const char* Name() const override;
  void CreateFilter(const Slice* keys, int n, std::string* dst) const override;
  bool KeyMayMatch(const Slice& key, const Slice& filter) const override;

 private:
  const FilterPolicy* const user_policy_;
};

// A helper class useful for DBImpl::Get().
class InternalKey {
 public:
  InternalKey() {}  // Leave rep_ as empty to indicate it is invalid
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool DecodeFrom(const Slice& s) {
    rep_.assign(s.data(), s.size());
    return !rep_.empty();
  }

  Slice Encode() const {
    assert(!rep_.empty());
    return rep_;
  }

  Slice user_key() const { return ExtractUserKey(rep_); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

  std::string DebugString() const;

 private:
  std::string rep_;
};

inline int InternalKeyComparator::Compare(const InternalKey& a,
                                          const InternalKey& b) const {
  return Compare(a.Encode(), b.Encode());
}

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  const size_t n = internal_key.size();
  if (n < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + n - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), n - 8);
  return (c <= static_cast<uint8_t>(kTypeValue));
}

// A helper class for DBImpl::Get(): carries a memtable key, an internal
// key, and a user key for the same lookup.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  ~LookupKey();

  // Return a key suitable for lookup in a MemTable.
  Slice memtable_key() const { return Slice(start_, end_ - start_); }

  // Return an internal key (suitable for passing to an internal iterator)
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }

  // Return the user key.
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  // We construct a char array of the form:
  //    klength  varint32               <-- start_
  //    userkey  char[klength]          <-- kstart_
  //    tag      uint64
  //                                    <-- end_
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // Avoid allocation for short keys
};

inline LookupKey::~LookupKey() {
  if (start_ != space_) delete[] start_;
}

}  // namespace bolt
